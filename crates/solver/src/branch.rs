//! Best-first branch & bound for mixed-integer programs.
//!
//! Solves the LP relaxation with the [`crate::simplex`] engine; while the
//! relaxed optimum assigns a fractional value to an integer variable,
//! branches on the most fractional one with `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉` bound
//! splits. Nodes are explored best-bound-first, so the first incumbent
//! found tends to be good and pruning is effective. The search is exact:
//! it terminates with the true optimum (or `Infeasible`).
//!
//! Child nodes **warm-start** from their parent's optimal basis: each
//! node keeps the [`simplex::SimplexState`] of its relaxation (shared
//! via `Arc` — branching only changes one variable's bounds, never the
//! constraint matrix), and the child repairs primal feasibility with a
//! dual-simplex phase instead of re-running two full phases from the
//! all-slack basis. The rounding dive chains warm starts the same way.
//! Warm and cold solves reach the same optima (pivot order may differ on
//! degenerate ties, so alternate optimal *vertices* are possible);
//! [`solve_mip_bounded_with`] exposes a cold mode for differential tests
//! and pivot-count comparisons.
//!
//! [`solve_mip_epoch`] extends the reuse *across* solves: when the same
//! model structure is re-solved every scheduling epoch with fresh
//! RHS/objective values, the previous epoch's optimal root state seeds
//! the new root relaxation (gated by [`ModelSkeleton`]), and only the
//! pivot count changes — the search below the root is identical.
//!
//! # The production kernel
//!
//! [`solve_mip_epoch`] runs the full production pipeline described by
//! [`KernelConfig::production`]: the model is shrunk by
//! [`crate::presolve`], relaxations run on the factorized revised
//! simplex ([`Engine::Factorized`], [`crate::revised`]) with exact
//! steepest-edge pricing ([`Pricing::SteepestEdge`]), and the search
//! expands node *batches* in parallel through `vb-par`. Each node
//! carries its engine's state ([`LpState`]), so children warm-start on
//! whichever engine solved the parent. Parallelism is deterministic by
//! construction — see [`solve_mip_from_root`]: batch membership is
//! chosen sequentially, per-node expansion is a pure function of the
//! node, results are applied in batch index order, and heap ties break
//! on a monotone insertion counter — so the incumbent sequence (and
//! the returned schedule) is bit-identical at any `VB_THREADS`.
//! [`KernelConfig::baseline`] pins the PR 7 behaviour (no presolve,
//! Dantzig pricing, serial search) for differential tests and the
//! `solver_perf` scaling comparison.

use crate::model::{Model, Sense, Solution, SolveError, VarId};
use crate::presolve::{self, Presolved};
use crate::revised::{self, RevisedState};
use crate::simplex::{self, Pricing, SimplexState};
use crate::skeleton::ModelSkeleton;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Integrality tolerance: values this close to an integer count as
/// integral.
const INT_EPS: f64 = 1e-6;

/// Default node budget: effectively "solve to optimality" for the model
/// sizes in this workspace.
const MAX_NODES: usize = 200_000;

/// Nodes expanded per parallel batch. Fixed — deliberately *not* a
/// function of the thread count, so the node schedule (which nodes are
/// popped before which incumbents exist) is identical at any
/// `VB_THREADS` and parallelism changes wall-clock only.
const PAR_BATCH: usize = 16;

/// Which LP engine solves the relaxations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Explicit sparse tableau ([`crate::simplex`]): every pivot
    /// rewrites the tableau rows. The PR 7/8 engine, kept as the
    /// differential baseline.
    #[default]
    Tableau,
    /// Revised simplex on a factorized LU basis ([`crate::revised`]):
    /// per-pivot FTRAN/BTRAN solves plus eta-file updates with periodic
    /// refactorization, instead of a tableau sweep.
    Factorized,
}

/// Which kernel layers a MIP solve runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Shrink the model with [`crate::presolve`] before solving and
    /// postsolve the solution back to the original variable space.
    pub presolve: bool,
    /// Entering-column pricing rule for every LP relaxation.
    pub pricing: Pricing,
    /// Expand branch & bound nodes in deterministic parallel batches.
    pub parallel: bool,
    /// LP engine for every relaxation (cold solves pick it directly;
    /// warm starts stay on the engine that produced the parent state).
    pub engine: Engine,
}

impl KernelConfig {
    /// The full production kernel: presolve + the factorized
    /// revised-simplex engine with steepest-edge pricing + parallel
    /// search. What [`solve_mip_epoch`] (and through it `MipPolicy` and
    /// the fleet path) runs.
    pub fn production() -> KernelConfig {
        KernelConfig {
            presolve: true,
            pricing: Pricing::SteepestEdge,
            parallel: true,
            engine: Engine::Factorized,
        }
    }

    /// The PR 7 kernel, layer for layer: no presolve, cyclic Dantzig
    /// pricing on the explicit tableau, serial best-first search. The
    /// differential baseline.
    pub fn baseline() -> KernelConfig {
        KernelConfig {
            presolve: false,
            pricing: Pricing::Dantzig,
            parallel: false,
            engine: Engine::Tableau,
        }
    }
}

/// A solved relaxation state from either engine. Branch & bound nodes
/// and the epoch cache carry this, so one search (and one cache) works
/// against both engines; warm starts dispatch on the variant.
#[derive(Debug, Clone)]
// Both variants boxed: nodes move `LpState` values around constantly,
// and the engine states are hundreds of bytes of inline header.
enum LpState {
    Tableau(Box<SimplexState>),
    Revised(Box<RevisedState>),
}

/// Solve a relaxation, warm-starting on the engine that produced
/// `warm` when present, else cold on `engine`.
fn lp_solve(
    model: &Model,
    overrides: &[(VarId, f64, f64)],
    warm: Option<&LpState>,
    pricing: Pricing,
    engine: Engine,
) -> Result<(Solution, LpState), SolveError> {
    match warm {
        Some(LpState::Tableau(st)) => {
            simplex::solve_lp_state_priced(model, overrides, Some(st), pricing)
                .map(|(s, st)| (s, LpState::Tableau(Box::new(st))))
        }
        Some(LpState::Revised(st)) => revised::solve_lp_state(model, overrides, Some(st), pricing)
            .map(|(s, st)| (s, LpState::Revised(Box::new(st)))),
        None => match engine {
            Engine::Tableau => simplex::solve_lp_state_priced(model, overrides, None, pricing)
                .map(|(s, st)| (s, LpState::Tableau(Box::new(st)))),
            Engine::Factorized => revised::solve_lp_state(model, overrides, None, pricing)
                .map(|(s, st)| (s, LpState::Revised(Box::new(st)))),
        },
    }
}

/// Cross-epoch warm solve on whichever engine produced `prev`.
fn lp_epoch_warm(
    model: &Model,
    prev: &LpState,
    pricing: Pricing,
) -> Result<(Solution, LpState), SolveError> {
    match prev {
        LpState::Tableau(st) => simplex::solve_lp_epoch_warm_priced(model, st, pricing)
            .map(|(s, st)| (s, LpState::Tableau(Box::new(st)))),
        LpState::Revised(st) => revised::solve_lp_epoch_warm(model, st, pricing)
            .map(|(s, st)| (s, LpState::Revised(Box::new(st)))),
    }
}

/// Solve a model with integer variables to optimality.
pub fn solve_mip(model: &Model) -> Result<Solution, SolveError> {
    solve_mip_bounded(model, MAX_NODES)
}

/// Solve with a node budget. When the budget runs out, the best
/// incumbent found so far is returned (an anytime solve, as commercial
/// solvers do under a time limit); only if *no* incumbent exists does it
/// fail with [`SolveError::IterationLimit`]. A rounding dive at the root
/// produces an incumbent almost immediately, so bounded solves rarely
/// fail outright.
pub fn solve_mip_bounded(model: &Model, max_nodes: usize) -> Result<Solution, SolveError> {
    solve_mip_bounded_with(model, max_nodes, true)
}

/// [`solve_mip_bounded`] with explicit control over warm starting.
///
/// `warm_start: false` re-solves every node's relaxation from the
/// all-slack basis — the pre-warm-start behaviour, kept for differential
/// testing and for measuring the pivot savings via the `solver.pivots`
/// telemetry counter.
pub fn solve_mip_bounded_with(
    model: &Model,
    max_nodes: usize,
    warm_start: bool,
) -> Result<Solution, SolveError> {
    let _span = vb_telemetry::span!("solver.mip_solve");
    vb_telemetry::counter!("solver.mip_solves").inc();
    // Root relaxation is always a cold solve.
    let kernel = KernelConfig::baseline();
    let root = lp_solve(model, &[], None, kernel.pricing, kernel.engine)?;
    solve_mip_from_root(model, max_nodes, warm_start, root, &kernel)
}

/// [`solve_mip_bounded_with`] with an explicit [`Pricing`] rule, run on
/// the engine that owns that rule in production ([`Engine::Factorized`]
/// for steepest-edge, the tableau otherwise) — lets pivot-accounting
/// tests exercise each pricing variant end to end through branch &
/// bound without configuring a full kernel.
pub fn solve_mip_bounded_priced(
    model: &Model,
    max_nodes: usize,
    warm_start: bool,
    pricing: Pricing,
) -> Result<Solution, SolveError> {
    let _span = vb_telemetry::span!("solver.mip_solve");
    vb_telemetry::counter!("solver.mip_solves").inc();
    let engine = match pricing {
        Pricing::SteepestEdge => Engine::Factorized,
        _ => Engine::Tableau,
    };
    let kernel = KernelConfig {
        presolve: false,
        pricing,
        parallel: false,
        engine,
    };
    let root = lp_solve(model, &[], None, pricing, engine)?;
    solve_mip_from_root(model, max_nodes, warm_start, root, &kernel)
}

/// Solve with an explicit [`KernelConfig`]: presolve the model (when
/// enabled), search with the configured pricing and parallelism, and
/// postsolve back to the original variable space. The incumbent
/// objective is always recomputed from the *original* model's cost
/// vector, so every config returns bit-identical objectives for the
/// same integer assignment.
pub fn solve_mip_kernel(
    model: &Model,
    max_nodes: usize,
    kernel: &KernelConfig,
) -> Result<Solution, SolveError> {
    let _span = vb_telemetry::span!("solver.mip_solve");
    vb_telemetry::counter!("solver.mip_solves").inc();
    model.validate()?;
    let pre = kernel
        .presolve
        .then(|| presolve::presolve_mip(model))
        .transpose()?;
    let target = pre.as_ref().map_or(model, Presolved::reduced);
    let root = lp_solve(target, &[], None, kernel.pricing, kernel.engine)?;
    let sol = solve_mip_from_root(target, max_nodes, true, root, kernel)?;
    Ok(match &pre {
        Some(p) => p.postsolve(model, &sol),
        None => sol,
    })
}

/// Cross-epoch solver cache: the structural fingerprint of the last
/// epoch's model plus its optimal root-relaxation state. Produced and
/// consumed by [`solve_mip_epoch`]; opaque to callers.
#[derive(Debug, Clone)]
pub struct EpochCache {
    skeleton: ModelSkeleton,
    root_state: LpState,
}

impl EpochCache {
    /// Nonzero count of the cached constraint matrix (exposed so
    /// schedulers can report model sparsity without rebuilding it).
    pub fn nnz(&self) -> usize {
        self.skeleton.nnz()
    }
}

/// Solve one epoch of a repeated MIP, warm-starting the root relaxation
/// from the previous epoch's optimal state when the model is
/// structurally identical (same constraint matrix, senses, dimensions,
/// and integrality — objective, RHS, and variable bounds may differ).
///
/// On a structure mismatch, absent cache, or failed basis repair the
/// root falls back to a cold solve — the search result is identical
/// either way, only the pivot count changes. Returns the solution, the
/// cache to carry into the next epoch, and whether the warm path was
/// taken (also counted in `solver.epoch_warm_hits` / `_misses`).
pub fn solve_mip_epoch(
    model: &Model,
    max_nodes: usize,
    cache: Option<&EpochCache>,
) -> Result<(Solution, EpochCache, bool), SolveError> {
    solve_mip_epoch_with(model, max_nodes, cache, &KernelConfig::production())
}

/// [`solve_mip_epoch`] with an explicit [`KernelConfig`].
///
/// With presolve enabled, the cache fingerprints (and the warm start
/// repairs) the *reduced* model — the tableau the kernel actually
/// iterates on. Reductions are a deterministic function of the model,
/// so structurally identical epochs reduce identically and keep
/// hitting; an epoch whose bounds/RHS shift the reduction (e.g. a
/// newly choked site fixes extra binaries) changes the reduced
/// skeleton and falls back to a cold root, which is correct — just
/// slower for that epoch.
pub fn solve_mip_epoch_with(
    model: &Model,
    max_nodes: usize,
    cache: Option<&EpochCache>,
    kernel: &KernelConfig,
) -> Result<(Solution, EpochCache, bool), SolveError> {
    let _span = vb_telemetry::span!("solver.mip_solve");
    vb_telemetry::counter!("solver.mip_solves").inc();
    model.validate()?;

    let pre = kernel
        .presolve
        .then(|| presolve::presolve_mip(model))
        .transpose()?;
    let target = pre.as_ref().map_or(model, Presolved::reduced);

    // `Err(Infeasible)` from the repair is NOT trusted as a certificate
    // here: unlike the branch-and-bound warm start (same model, only
    // bounds moved), an epoch swapped in new RHS values, and a frozen
    // redundant row can make the repair fail on a feasible model. Any
    // warm failure just means a cold root.
    let warm_root = cache
        .filter(|c| c.skeleton.matches(target))
        .and_then(|c| lp_epoch_warm(target, &c.root_state, kernel.pricing).ok());
    let hit = warm_root.is_some();
    if hit {
        vb_telemetry::counter!("solver.epoch_warm_hits").inc();
    } else {
        vb_telemetry::counter!("solver.epoch_warm_misses").inc();
    }
    let root = match warm_root {
        Some(r) => r,
        None => lp_solve(target, &[], None, kernel.pricing, kernel.engine)?,
    };
    let next = EpochCache {
        skeleton: ModelSkeleton::of(target),
        root_state: root.1.clone(),
    };
    let sol = solve_mip_from_root(target, max_nodes, true, root, kernel)?;
    let sol = match &pre {
        Some(p) => p.postsolve(model, &sol),
        None => sol,
    };
    Ok((sol, next, hit))
}

/// The branch & bound search proper, starting from an already-solved
/// root relaxation (cold or epoch-warm — the search below it is
/// identical, so warm and cold epochs produce the same schedule).
///
/// The node budget counts *popped* nodes: the search pops and expands
/// at most `max_nodes` nodes, and `max_nodes == 0` does no work at all
/// (not even the rounding dive). When the budget runs out with nodes
/// still queued, the best incumbent is returned anytime-style, or
/// [`SolveError::IterationLimit`] if none exists yet.
///
/// # Deterministic parallelism
///
/// With `kernel.parallel`, up to [`PAR_BATCH`] nodes are expanded per
/// round through `vb_par::par_map`. Determinism at any thread count
/// follows from four properties:
///
/// 1. batch *membership* is decided sequentially (pops, budget, and
///    prune checks happen before any parallel work, against the same
///    incumbent regardless of thread count);
/// 2. expanding a node ([`expand`]) is a pure function of that node —
///    it reads no search-global state;
/// 3. `par_map` returns results in batch index order and they are
///    *applied* (incumbent updates, child pushes) sequentially in that
///    order;
/// 4. heap ties on equal bounds break on a monotone insertion counter
///    ([`Node::seq`]), so the pop order never depends on
///    `BinaryHeap`'s internal layout of equal keys.
///
/// The serial path is the same loop with a batch size of 1, which is
/// exactly the PR 7 search (modulo the budget fix above).
fn solve_mip_from_root(
    model: &Model,
    max_nodes: usize,
    warm_start: bool,
    root: (Solution, LpState),
    kernel: &KernelConfig,
) -> Result<Solution, SolveError> {
    let int_vars: Vec<VarId> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.integer)
        .map(|(i, _)| VarId(i))
        .collect();

    let (root, root_state) = root;
    let root_state = Arc::new(root_state);

    let better = |a: f64, b: f64| match model.sense {
        Sense::Minimize => a < b - 1e-9,
        Sense::Maximize => a > b + 1e-9,
    };

    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(Node {
        bound: root.objective,
        sense: model.sense,
        seq,
        overrides: Vec::new(),
        relaxed: root.clone(),
        state: Arc::clone(&root_state),
    });
    seq += 1;

    // Rounding dive from the root: fix the most fractional variable to
    // its nearest integer and re-solve until integral. This produces an
    // incumbent in ~|int_vars| LP solves, making bounded solves anytime
    // — skipped entirely under a zero budget, which asked for no work.
    let mut incumbent: Option<Solution> = if max_nodes > 0 {
        dive(
            model,
            &int_vars,
            root,
            &root_state,
            warm_start,
            kernel.pricing,
            kernel.engine,
        )
    } else {
        None
    };
    let batch_cap = if kernel.parallel { PAR_BATCH } else { 1 };
    let mut explored = 0usize;
    let mut pruned = 0u64;
    let mut improvements = 0u64;
    let mut par_batches = 0u64;
    let mut par_nodes = 0u64;
    let budget_exhausted;

    loop {
        // Sequential batch selection under the node budget. Every
        // popped node counts against the budget, and every counted
        // node is actually processed (pruned or expanded) — the budget
        // can no longer eat a node it never looked at.
        let mut batch: Vec<Node> = Vec::new();
        while batch.len() < batch_cap && explored < max_nodes {
            let Some(node) = heap.pop() else { break };
            explored += 1;
            // Bound pruning: the node's relaxation bound cannot beat
            // the incumbent.
            if let Some(inc) = &incumbent {
                if !better(node.bound, inc.objective) {
                    pruned += 1;
                    continue;
                }
            }
            batch.push(node);
        }
        if batch.is_empty() {
            budget_exhausted = explored >= max_nodes && !heap.is_empty();
            break;
        }

        // Expand the batch: the per-node LP work, fanned out when the
        // batch warrants it. `par_map` preserves index order.
        let expansions: Vec<Expansion> = if batch.len() > 1 {
            par_batches += 1;
            par_nodes += batch.len() as u64;
            vb_par::par_map(batch.len(), |i| {
                expand(
                    model,
                    &int_vars,
                    &batch[i],
                    warm_start,
                    kernel.pricing,
                    kernel.engine,
                )
            })
        } else {
            batch
                .iter()
                .map(|n| {
                    expand(
                        model,
                        &int_vars,
                        n,
                        warm_start,
                        kernel.pricing,
                        kernel.engine,
                    )
                })
                .collect()
        };

        // Apply in batch index order — the incumbent sequence is a
        // deterministic function of the node schedule alone.
        for exp in expansions {
            match exp {
                Expansion::Integral(snapped) => {
                    let accept = incumbent
                        .as_ref()
                        .is_none_or(|inc| better(snapped.objective, inc.objective));
                    if accept {
                        incumbent = Some(snapped);
                        improvements += 1;
                    }
                }
                Expansion::Children(children) => {
                    for child in children {
                        let keep = incumbent
                            .as_ref()
                            .is_none_or(|inc| better(child.relaxed.objective, inc.objective));
                        if keep {
                            heap.push(Node {
                                bound: child.relaxed.objective,
                                sense: model.sense,
                                seq,
                                overrides: child.overrides,
                                relaxed: child.relaxed,
                                state: child.state,
                            });
                            seq += 1;
                        }
                    }
                }
            }
        }
    }

    vb_telemetry::counter!("solver.mip_nodes_expanded").add(explored as u64);
    vb_telemetry::counter!("solver.mip_nodes_pruned").add(pruned);
    vb_telemetry::counter!("solver.mip_incumbent_improvements").add(improvements);
    vb_telemetry::histogram!("solver.mip_nodes_per_solve").observe(explored as f64);
    if par_batches > 0 {
        vb_telemetry::counter!("solver.bb_parallel_batches").add(par_batches);
        vb_telemetry::counter!("solver.bb_parallel_nodes").add(par_nodes);
    }

    incumbent.ok_or(if budget_exhausted {
        SolveError::IterationLimit
    } else {
        SolveError::Infeasible
    })
}

/// What expanding one node produced: an integral (snapped) candidate
/// incumbent, or the surviving branch children with their solved
/// relaxations.
enum Expansion {
    Integral(Solution),
    Children(Vec<Child>),
}

/// One solved branch child, ready to become a heap [`Node`].
struct Child {
    overrides: Vec<(VarId, f64, f64)>,
    relaxed: Solution,
    state: Arc<LpState>,
}

/// Expand one node: branch on its most fractional integer variable and
/// solve both children's relaxations (or report the node integral). A
/// pure function of the node — no incumbent checks, no heap access —
/// so batches of nodes can expand in parallel with bit-identical
/// results in any interleaving.
fn expand(
    model: &Model,
    int_vars: &[VarId],
    node: &Node,
    warm_start: bool,
    pricing: Pricing,
    engine: Engine,
) -> Expansion {
    let Some((var, value)) = most_fractional(&node.relaxed, int_vars) else {
        // Integral: candidate incumbent (round off the epsilon).
        return Expansion::Integral(snap(model, &node.relaxed, int_vars));
    };
    let floor = value.floor();
    let mut children = Vec::with_capacity(2);
    for (lo, hi) in [(f64::NEG_INFINITY, floor), (floor + 1.0, f64::INFINITY)] {
        let mut overrides = node.overrides.clone();
        let (base_lb, base_ub) = effective_bounds(model, &overrides, var);
        let new_lb = base_lb.max(lo);
        let new_ub = base_ub.min(hi);
        if new_lb > new_ub + INT_EPS {
            continue;
        }
        overrides.retain(|&(v, _, _)| v != var);
        overrides.push((var, new_lb, new_ub));
        let parent = warm_start.then(|| &*node.state);
        if let Ok((relaxed, state)) = lp_solve(model, &overrides, parent, pricing, engine) {
            children.push(Child {
                overrides,
                relaxed,
                state: Arc::new(state),
            });
        }
    }
    Expansion::Children(children)
}

/// Greedy rounding dive: repeatedly fix the most fractional integer
/// variable to its nearest value (trying the other direction on
/// infeasibility) until the relaxation is integral. Returns the rounded
/// solution when the dive survives to the bottom. Each fix warm-starts
/// from the previous level's basis.
#[allow(clippy::too_many_arguments)]
fn dive(
    model: &Model,
    int_vars: &[VarId],
    mut relaxed: Solution,
    root_state: &LpState,
    warm_start: bool,
    pricing: Pricing,
    engine: Engine,
) -> Option<Solution> {
    let mut overrides: Vec<(VarId, f64, f64)> = Vec::new();
    let mut state = root_state.clone();
    loop {
        let Some((var, value)) = most_fractional(&relaxed, int_vars) else {
            return Some(snap(model, &relaxed, int_vars));
        };
        let (lb, ub) = (model.vars[var.0].lb, model.vars[var.0].ub);
        let nearest = value.round().clamp(lb.ceil(), ub.floor());
        let other = (if nearest > value {
            value.floor()
        } else {
            value.ceil()
        })
        .clamp(lb.ceil(), ub.floor());
        let mut fixed = false;
        for candidate in [nearest, other] {
            let mut trial = overrides.clone();
            trial.retain(|&(v, _, _)| v != var);
            trial.push((var, candidate, candidate));
            let parent = warm_start.then_some(&state);
            if let Ok((sol, st)) = lp_solve(model, &trial, parent, pricing, engine) {
                overrides = trial;
                relaxed = sol;
                state = st;
                fixed = true;
                break;
            }
        }
        if !fixed {
            return None;
        }
    }
}

/// Current bounds of `var` under the model plus overrides.
fn effective_bounds(model: &Model, overrides: &[(VarId, f64, f64)], var: VarId) -> (f64, f64) {
    overrides
        .iter()
        .find(|&&(v, _, _)| v == var)
        .map(|&(_, l, u)| (l, u))
        .unwrap_or((model.vars[var.0].lb, model.vars[var.0].ub))
}

/// The integer variable whose relaxed value is farthest from integral.
fn most_fractional(sol: &Solution, int_vars: &[VarId]) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64, f64)> = None;
    for &v in int_vars {
        let x = sol.value(v);
        let frac = (x - x.round()).abs();
        if frac > INT_EPS {
            let dist = (x - x.floor() - 0.5).abs(); // 0 = most fractional
            if best.is_none_or(|(_, _, d)| dist < d) {
                best = Some((v, x, dist));
            }
        }
    }
    best.map(|(v, x, _)| (v, x))
}

/// Round integer variables exactly onto the grid and **recompute the
/// objective from the model's cost vector** over the snapped values.
/// Keeping the relaxation objective (the pre-PR 8 behaviour) carries
/// the rounding drift into incumbent comparisons, where it can flip
/// which of two near-tied incumbents survives. Recomputing in the
/// model's own term order also makes the objective bit-identical for
/// the same assignment no matter which kernel path produced it.
fn snap(model: &Model, sol: &Solution, int_vars: &[VarId]) -> Solution {
    let mut values = sol.values().to_vec();
    for &v in int_vars {
        values[v.0] = values[v.0].round();
    }
    let objective: f64 = model
        .objective
        .iter()
        .map(|&(v, c)| c * values[v.0])
        .sum::<f64>()
        + model.objective_const;
    Solution::new(objective, values)
}

/// Branch & bound search node, ordered so the heap pops the best bound
/// first (largest for maximisation, smallest for minimisation), with
/// equal bounds breaking FIFO on the insertion counter `seq` — the
/// pop order is a pure function of the push sequence, never of
/// `BinaryHeap` internals. Carries the node's optimal simplex state so
/// children can warm-start from it.
struct Node {
    bound: f64,
    sense: Sense,
    /// Monotone insertion counter; unique per heap.
    seq: u64,
    overrides: Vec<(VarId, f64, f64)>,
    relaxed: Solution,
    state: Arc<LpState>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        let ord = self.bound.total_cmp(&other.bound);
        let ord = match self.sense {
            Sense::Maximize => ord,
            Sense::Minimize => ord.reverse(),
        };
        // Max-heap: the *smaller* seq must compare greater so equal
        // bounds pop first-in-first-out.
        ord.then_with(|| other.seq.cmp(&self.seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    #[test]
    fn knapsack_is_solved_exactly() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30],
        // capacity 50 -> take items 2 and 3, value 220.
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<VarId> = (0..3).map(|i| m.bin_var(&format!("x{i}"))).collect();
        let e = m.expr(&[(x[0], 10.0), (x[1], 20.0), (x[2], 30.0)]);
        m.add_le(e, 50.0);
        let obj = m.expr(&[(x[0], 60.0), (x[1], 100.0), (x[2], 120.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 220.0).abs() < 1e-6);
        assert_eq!(s.int_value(x[0]), 0);
        assert_eq!(s.int_value(x[1]), 1);
        assert_eq!(s.int_value(x[2]), 1);
    }

    #[test]
    fn integer_rounding_is_not_lp_rounding() {
        // max x + y s.t. 2x + 2y <= 3, integers -> LP gives 1.5, MIP 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 5.0);
        let y = m.int_var("y", 0.0, 5.0);
        let e = m.expr(&[(x, 2.0), (y, 2.0)]);
        m.add_le(e, 3.0);
        let obj = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + y, x integer <= 2.5 bound via constraint, y cont <= 1.7.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.var("y", 0.0, 10.0);
        let e1 = m.expr(&[(x, 1.0)]);
        m.add_le(e1, 2.5);
        let e2 = m.expr(&[(y, 1.0)]);
        m.add_le(e2, 1.7);
        let obj = m.expr(&[(x, 2.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
        assert!((s.value(y) - 1.7).abs() < 1e-6);
        assert!((s.objective - 5.7).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip_is_reported() {
        // x + y = 1 with x, y binary and x + y >= 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_ge(e, 3.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn minimization_mip() {
        // min 3x + 4y s.t. x + 2y >= 5, integers >= 0.
        // Candidates: (5,0)=15, (3,1)=13, (1,2)=11, (0,3)=12 -> 11.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        let e = m.expr(&[(x, 1.0), (y, 2.0)]);
        m.add_ge(e, 5.0);
        let obj = m.expr(&[(x, 3.0), (y, 4.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 11.0).abs() < 1e-6, "obj {}", s.objective);
        assert_eq!((s.int_value(x), s.int_value(y)), (1, 2));
    }

    #[test]
    fn equality_constrained_assignment() {
        // Assign 2 apps to 2 sites, each app exactly once, site 0 holds
        // only one app. Costs: a0s0=1, a0s1=5, a1s0=2, a1s1=4.
        // Best: a0->s0 (1), a1->s1 (4) = 5.
        let mut m = Model::new(Sense::Minimize);
        let a0s0 = m.bin_var("a0s0");
        let a0s1 = m.bin_var("a0s1");
        let a1s0 = m.bin_var("a1s0");
        let a1s1 = m.bin_var("a1s1");
        let e1 = m.expr(&[(a0s0, 1.0), (a0s1, 1.0)]);
        m.add_eq(e1, 1.0);
        let e2 = m.expr(&[(a1s0, 1.0), (a1s1, 1.0)]);
        m.add_eq(e2, 1.0);
        let e3 = m.expr(&[(a0s0, 1.0), (a1s0, 1.0)]);
        m.add_le(e3, 1.0);
        let obj = m.expr(&[(a0s0, 1.0), (a0s1, 5.0), (a1s0, 2.0), (a1s1, 4.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
        assert_eq!(s.int_value(a0s0), 1);
        assert_eq!(s.int_value(a1s1), 1);
    }

    #[test]
    fn objective_constant_survives_branching() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        let e = m.expr(&[(x, 2.0)]);
        m.add_ge(e, 3.0); // x >= 1.5 -> x = 2
        let obj = LinExpr::term(x, 1.0).add_const(7.0);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
        assert!((s.objective - 9.0).abs() < 1e-6);
    }

    #[test]
    fn minimax_pattern_used_by_mip_peak() {
        // The O2 objective is modelled as min z with z >= load_i. Mixing
        // a continuous z with binary placement vars must work.
        // Two items of sizes 3 and 5 onto two sites; minimise the peak.
        let mut m = Model::new(Sense::Minimize);
        let z = m.var("z", 0.0, f64::INFINITY);
        let x0 = m.bin_var("item0_site0");
        let x1 = m.bin_var("item1_site0");
        // Site 0 load = 3 x0 + 5 x1; site 1 load = 3(1-x0) + 5(1-x1).
        let e1 = m.expr(&[(x0, 3.0), (x1, 5.0), (z, -1.0)]);
        m.add_le(e1, 0.0);
        let e2 = m.expr(&[(x0, -3.0), (x1, -5.0), (z, -1.0)]);
        m.add_le(e2, -8.0);
        let obj = m.expr(&[(z, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        // Best split: 5 on one site, 3 on the other -> peak 5.
        assert!((s.objective - 5.0).abs() < 1e-6, "obj {}", s.objective);
    }

    /// A placement-shaped MIP: `apps` binaries per site, each app on
    /// exactly one site, per-site capacity, cost per placement.
    fn placement_model(apps: usize, sites: usize, seed: u64) -> Model {
        let mut rng = seed;
        let mut next = || {
            // SplitMix64 — deterministic, no external RNG needed here.
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![vec![]; apps];
        for (a, row) in x.iter_mut().enumerate() {
            for s in 0..sites {
                row.push(m.bin_var(&format!("a{a}s{s}")));
            }
        }
        for row in &x {
            let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            let e = m.expr(&terms);
            m.add_eq(e, 1.0);
        }
        let sizes: Vec<f64> = (0..apps).map(|_| 1.0 + (next() * 3.0).round()).collect();
        for s in 0..sites {
            let terms: Vec<(VarId, f64)> = x.iter().zip(&sizes).map(|(r, &c)| (r[s], c)).collect();
            let e = m.expr(&terms);
            let cap = sizes.iter().sum::<f64>() / sites as f64 * 1.6 + 2.0;
            m.add_le(e, cap);
        }
        let mut obj_terms = Vec::new();
        for row in &x {
            for &v in row {
                obj_terms.push((v, (next() * 10.0).round() + 1.0));
            }
        }
        let e = m.expr(&obj_terms);
        m.set_objective(e);
        m
    }

    /// A small placement MIP with a parameterised capacity vector — the
    /// same structure every epoch, only the capacity RHS moves. Distinct
    /// costs make the integer optimum unique.
    fn epoch_placement(caps: [f64; 2]) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let sizes = [2.0, 3.0, 1.0, 4.0];
        let costs = [[1.0, 6.0], [5.0, 2.0], [3.0, 4.0], [7.0, 1.5]];
        let mut x = Vec::new();
        for a in 0..4 {
            let row: Vec<VarId> = (0..2).map(|s| m.bin_var(&format!("a{a}s{s}"))).collect();
            let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            let e = m.expr(&terms);
            m.add_eq(e, 1.0);
            x.push(row);
        }
        for s in 0..2 {
            let terms: Vec<(VarId, f64)> =
                x.iter().zip(&sizes).map(|(row, &c)| (row[s], c)).collect();
            let e = m.expr(&terms);
            m.add_le(e, caps[s]);
        }
        let mut obj = Vec::new();
        for (a, row) in x.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                obj.push((v, costs[a][s]));
            }
        }
        let e = m.expr(&obj);
        m.set_objective(e);
        m
    }

    #[test]
    fn epoch_warm_solves_match_the_cold_path() {
        // Cross-epoch reuse must change only the pivot count, never the
        // schedule: every epoch's solution must equal the cold solve's.
        let mut cache: Option<EpochCache> = None;
        let epochs = [[6.0, 6.0], [5.0, 8.0], [8.0, 4.0], [6.0, 6.0], [7.0, 7.0]];
        for (k, caps) in epochs.into_iter().enumerate() {
            let m = epoch_placement(caps);
            let (warm, next, hit) = solve_mip_epoch(&m, MAX_NODES, cache.as_ref()).unwrap();
            let cold = solve_mip_bounded_with(&m, MAX_NODES, true).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-9,
                "epoch {k}: warm obj {} vs cold {}",
                warm.objective,
                cold.objective
            );
            for j in 0..8 {
                assert_eq!(
                    warm.int_value(VarId(j)),
                    cold.int_value(VarId(j)),
                    "epoch {k}: placement diverged on var {j}"
                );
            }
            assert_eq!(hit, k > 0, "epoch {k}: unexpected warm status");
            cache = Some(next);
        }
    }

    #[test]
    fn epoch_cache_misses_on_structure_change() {
        let m = epoch_placement([6.0, 6.0]);
        let (_, cache, hit) = solve_mip_epoch(&m, MAX_NODES, None).unwrap();
        assert!(!hit, "first epoch has no cache to hit");
        assert_eq!(cache.nnz(), 8 + 8);

        // A moved coefficient (app 0 grows) must force the cold path —
        // and still solve correctly.
        let mut grown = epoch_placement([6.0, 6.0]);
        grown.constraints[4].coefs[0].1 = 2.5;
        let (sol, _, hit) = solve_mip_epoch(&grown, MAX_NODES, Some(&cache)).unwrap();
        assert!(!hit, "structure change must miss");
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn warm_and_cold_branch_and_bound_agree() {
        // Warm-started B&B must reach the same optimum as cold-started
        // B&B on placement-shaped MIPs (the Table 1 workload shape).
        for seed in 0..8u64 {
            let m = placement_model(6, 3, seed * 7 + 1);
            let warm = solve_mip_bounded_with(&m, MAX_NODES, true).unwrap();
            let cold = solve_mip_bounded_with(&m, MAX_NODES, false).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "seed {seed}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn repeated_solves_are_deterministic() {
        // Fixed pivot tie-breaking: the same model must produce the
        // same placement vector every time, warm or not.
        let m = placement_model(6, 3, 42);
        let first = solve_mip(&m).unwrap();
        for _ in 0..3 {
            let again = solve_mip(&m).unwrap();
            assert_eq!(first.values(), again.values());
        }
    }

    #[test]
    fn incumbent_objective_is_recomputed_from_snapped_values() {
        // Regression for the snap() drift bug. Two competing plans are
        // gated by binaries z1/z2 through a knapsack z1 + z2 ≤ 1.4:
        //   A: x (worth 10^7), throttled to CAP = 1 − 9e-7 by its own
        //      cap row, so the relaxation values A at 9_999_991 while
        //      the snapped assignment is worth exactly 10^7;
        //   B: y (worth 9_999_995), exactly integral.
        // The rounding dive finds A first. The buggy snap kept A's
        // *relaxation* objective, so B (9_999_995 > 9_999_991) would
        // replace it later in the search; recomputing from the cost
        // vector (10^7 > 9_999_995) correctly keeps A.
        const CAP: f64 = 1.0 - 9.0e-7;
        let mut m = Model::new(Sense::Maximize);
        let z1 = m.bin_var("z1");
        let z2 = m.bin_var("z2");
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        let e = m.expr(&[(x, 1.0), (z1, -1.0)]);
        m.add_le(e, 0.0);
        let e = m.expr(&[(x, 1.0)]);
        m.add_le(e, CAP);
        let e = m.expr(&[(y, 1.0), (z2, -1.0)]);
        m.add_le(e, 0.0);
        let e = m.expr(&[(z1, 0.6), (z2, 0.6)]);
        m.add_le(e, 0.84);
        let obj = m.expr(&[(x, 1.0e7), (y, 9_999_995.0)]);
        m.set_objective(obj);

        let s = solve_mip_bounded_with(&m, MAX_NODES, true).unwrap();
        assert_eq!(
            (s.int_value(x), s.int_value(y)),
            (1, 0),
            "snap drift flipped the incumbent"
        );
        assert!(
            (s.objective - 1.0e7).abs() < 1e-3,
            "objective must be the snapped assignment's true value, got {}",
            s.objective
        );
    }

    fn knapsack() -> (Model, Vec<VarId>) {
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<VarId> = (0..3).map(|i| m.bin_var(&format!("x{i}"))).collect();
        let e = m.expr(&[(x[0], 10.0), (x[1], 20.0), (x[2], 30.0)]);
        m.add_le(e, 50.0);
        let obj = m.expr(&[(x[0], 60.0), (x[1], 100.0), (x[2], 120.0)]);
        m.set_objective(obj);
        (m, x)
    }

    #[test]
    fn zero_node_budget_does_no_work_and_reports_the_budget() {
        // max_nodes = 0 previously still ran the rounding dive (one LP
        // per integer variable) and returned its incumbent as Ok. A
        // zero budget must do no search work: no dive, no pops, and an
        // IterationLimit report (there are unexplored nodes).
        let (m, _) = knapsack();
        assert_eq!(
            solve_mip_bounded(&m, 0).unwrap_err(),
            SolveError::IterationLimit
        );
    }

    #[test]
    fn single_node_budget_returns_the_dive_incumbent() {
        // max_nodes = 1 pops exactly the root: the budget no longer
        // counts a node it never processed, and the dive incumbent
        // (which reaches the true optimum here) is returned anytime-
        // style.
        let (m, x) = knapsack();
        let s = solve_mip_bounded(&m, 1).unwrap();
        assert!((s.objective - 220.0).abs() < 1e-6, "obj {}", s.objective);
        assert_eq!(
            (s.int_value(x[0]), s.int_value(x[1]), s.int_value(x[2])),
            (0, 1, 1)
        );
    }

    #[test]
    fn production_kernel_matches_baseline_bit_for_bit() {
        // Presolve + devex + parallel B&B on vs. off: the objective
        // must be bit-identical (snap() recomputes it from the same
        // cost vector over the same unique-optimum assignment).
        for seed in 0..6u64 {
            let m = placement_model(8, 3, seed * 11 + 5);
            let base = solve_mip_kernel(&m, MAX_NODES, &KernelConfig::baseline()).unwrap();
            let prod = solve_mip_kernel(&m, MAX_NODES, &KernelConfig::production()).unwrap();
            assert_eq!(
                base.objective.to_bits(),
                prod.objective.to_bits(),
                "seed {seed}: kernel objective drifted: {} vs {}",
                base.objective,
                prod.objective
            );
        }
    }

    #[test]
    fn production_kernel_presolves_pinned_placements() {
        // A model with singleton pins must survive the reduce/postsolve
        // round trip: pinned vars come back in the full solution.
        let mut m = Model::new(Sense::Minimize);
        let a = m.bin_var("a0s0");
        let b = m.bin_var("a0s1");
        let e = m.expr(&[(a, 1.0), (b, 1.0)]);
        m.add_eq(e, 1.0);
        let e = m.expr(&[(a, 1.0)]);
        m.add_eq(e, 1.0); // pin a0 home
        let c = m.bin_var("a1s0");
        let d = m.bin_var("a1s1");
        let e2 = m.expr(&[(c, 1.0), (d, 1.0)]);
        m.add_eq(e2, 1.0);
        let obj = m.expr(&[(a, 1.0), (b, 9.0), (c, 5.0), (d, 2.0)]);
        m.set_objective(obj);
        let s = solve_mip_kernel(&m, MAX_NODES, &KernelConfig::production()).unwrap();
        assert_eq!(
            (
                s.int_value(a),
                s.int_value(b),
                s.int_value(c),
                s.int_value(d)
            ),
            (1, 0, 0, 1)
        );
        assert!((s.objective - 3.0).abs() < 1e-9);
    }
}
