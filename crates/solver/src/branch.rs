//! Best-first branch & bound for mixed-integer programs.
//!
//! Solves the LP relaxation with the [`crate::simplex`] engine; while the
//! relaxed optimum assigns a fractional value to an integer variable,
//! branches on the most fractional one with `x ≤ ⌊v⌋` / `x ≥ ⌈v⌉` bound
//! splits. Nodes are explored best-bound-first, so the first incumbent
//! found tends to be good and pruning is effective. The search is exact:
//! it terminates with the true optimum (or `Infeasible`).
//!
//! Child nodes **warm-start** from their parent's optimal basis: each
//! node keeps the [`simplex::SimplexState`] of its relaxation (shared
//! via `Rc` — branching only changes one variable's bounds, never the
//! constraint matrix), and the child repairs primal feasibility with a
//! dual-simplex phase instead of re-running two full phases from the
//! all-slack basis. The rounding dive chains warm starts the same way.
//! Warm and cold solves reach the same optima (pivot order may differ on
//! degenerate ties, so alternate optimal *vertices* are possible);
//! [`solve_mip_bounded_with`] exposes a cold mode for differential tests
//! and pivot-count comparisons.
//!
//! [`solve_mip_epoch`] extends the reuse *across* solves: when the same
//! model structure is re-solved every scheduling epoch with fresh
//! RHS/objective values, the previous epoch's optimal root state seeds
//! the new root relaxation (gated by [`ModelSkeleton`]), and only the
//! pivot count changes — the search below the root is identical.

use crate::model::{Model, Sense, Solution, SolveError, VarId};
use crate::simplex::{self, SimplexState};
use crate::skeleton::ModelSkeleton;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Integrality tolerance: values this close to an integer count as
/// integral.
const INT_EPS: f64 = 1e-6;

/// Default node budget: effectively "solve to optimality" for the model
/// sizes in this workspace.
const MAX_NODES: usize = 200_000;

/// Solve a model with integer variables to optimality.
pub fn solve_mip(model: &Model) -> Result<Solution, SolveError> {
    solve_mip_bounded(model, MAX_NODES)
}

/// Solve with a node budget. When the budget runs out, the best
/// incumbent found so far is returned (an anytime solve, as commercial
/// solvers do under a time limit); only if *no* incumbent exists does it
/// fail with [`SolveError::IterationLimit`]. A rounding dive at the root
/// produces an incumbent almost immediately, so bounded solves rarely
/// fail outright.
pub fn solve_mip_bounded(model: &Model, max_nodes: usize) -> Result<Solution, SolveError> {
    solve_mip_bounded_with(model, max_nodes, true)
}

/// [`solve_mip_bounded`] with explicit control over warm starting.
///
/// `warm_start: false` re-solves every node's relaxation from the
/// all-slack basis — the pre-warm-start behaviour, kept for differential
/// testing and for measuring the pivot savings via the `solver.pivots`
/// telemetry counter.
pub fn solve_mip_bounded_with(
    model: &Model,
    max_nodes: usize,
    warm_start: bool,
) -> Result<Solution, SolveError> {
    let _span = vb_telemetry::span!("solver.mip_solve");
    vb_telemetry::counter!("solver.mip_solves").inc();
    // Root relaxation is always a cold solve.
    let root = simplex::solve_lp_state(model, &[], None)?;
    solve_mip_from_root(model, max_nodes, warm_start, root)
}

/// Cross-epoch solver cache: the structural fingerprint of the last
/// epoch's model plus its optimal root-relaxation state. Produced and
/// consumed by [`solve_mip_epoch`]; opaque to callers.
#[derive(Debug, Clone)]
pub struct EpochCache {
    skeleton: ModelSkeleton,
    root_state: SimplexState,
}

impl EpochCache {
    /// Nonzero count of the cached constraint matrix (exposed so
    /// schedulers can report model sparsity without rebuilding it).
    pub fn nnz(&self) -> usize {
        self.skeleton.nnz()
    }
}

/// Solve one epoch of a repeated MIP, warm-starting the root relaxation
/// from the previous epoch's optimal state when the model is
/// structurally identical (same constraint matrix, senses, dimensions,
/// and integrality — objective, RHS, and variable bounds may differ).
///
/// On a structure mismatch, absent cache, or failed basis repair the
/// root falls back to a cold solve — the search result is identical
/// either way, only the pivot count changes. Returns the solution, the
/// cache to carry into the next epoch, and whether the warm path was
/// taken (also counted in `solver.epoch_warm_hits` / `_misses`).
pub fn solve_mip_epoch(
    model: &Model,
    max_nodes: usize,
    cache: Option<&EpochCache>,
) -> Result<(Solution, EpochCache, bool), SolveError> {
    let _span = vb_telemetry::span!("solver.mip_solve");
    vb_telemetry::counter!("solver.mip_solves").inc();
    model.validate()?;

    // `Err(Infeasible)` from the repair is NOT trusted as a certificate
    // here: unlike the branch-and-bound warm start (same model, only
    // bounds moved), an epoch swapped in new RHS values, and a frozen
    // redundant row can make the repair fail on a feasible model. Any
    // warm failure just means a cold root.
    let warm_root = cache
        .filter(|c| c.skeleton.matches(model))
        .and_then(|c| simplex::solve_lp_epoch_warm(model, &c.root_state).ok());
    let hit = warm_root.is_some();
    if hit {
        vb_telemetry::counter!("solver.epoch_warm_hits").inc();
    } else {
        vb_telemetry::counter!("solver.epoch_warm_misses").inc();
    }
    let root = match warm_root {
        Some(r) => r,
        None => simplex::solve_lp_state(model, &[], None)?,
    };
    let next = EpochCache {
        skeleton: ModelSkeleton::of(model),
        root_state: root.1.clone(),
    };
    let sol = solve_mip_from_root(model, max_nodes, true, root)?;
    Ok((sol, next, hit))
}

/// The branch & bound search proper, starting from an already-solved
/// root relaxation (cold or epoch-warm — the search below it is
/// identical, so warm and cold epochs produce the same schedule).
fn solve_mip_from_root(
    model: &Model,
    max_nodes: usize,
    warm_start: bool,
    root: (Solution, SimplexState),
) -> Result<Solution, SolveError> {
    let int_vars: Vec<VarId> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.integer)
        .map(|(i, _)| VarId(i))
        .collect();

    let (root, root_state) = root;
    let root_state = Rc::new(root_state);

    let better = |a: f64, b: f64| match model.sense {
        Sense::Minimize => a < b - 1e-9,
        Sense::Maximize => a > b + 1e-9,
    };

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root.objective,
        sense: model.sense,
        overrides: Vec::new(),
        relaxed: root.clone(),
        state: Rc::clone(&root_state),
    });

    // Rounding dive from the root: fix the most fractional variable to
    // its nearest integer and re-solve until integral. This produces an
    // incumbent in ~|int_vars| LP solves, making bounded solves anytime.
    let mut incumbent: Option<Solution> = dive(model, &int_vars, root, &root_state, warm_start);
    let mut explored = 0usize;
    let mut pruned = 0u64;
    let mut improvements = 0u64;
    let mut budget_exhausted = false;

    while let Some(node) = heap.pop() {
        explored += 1;
        if explored > max_nodes {
            budget_exhausted = true;
            break;
        }
        // Bound pruning: the node's relaxation bound cannot beat the
        // incumbent.
        if let Some(inc) = &incumbent {
            if !better(node.bound, inc.objective) {
                pruned += 1;
                continue;
            }
        }

        match most_fractional(&node.relaxed, &int_vars) {
            None => {
                // Integral: candidate incumbent (round off the epsilon).
                let snapped = snap(&node.relaxed, &int_vars);
                let accept = incumbent
                    .as_ref()
                    .is_none_or(|inc| better(snapped.objective, inc.objective));
                if accept {
                    incumbent = Some(snapped);
                    improvements += 1;
                }
            }
            Some((var, value)) => {
                let floor = value.floor();
                for (lo, hi) in [(f64::NEG_INFINITY, floor), (floor + 1.0, f64::INFINITY)] {
                    let mut overrides = node.overrides.clone();
                    let (base_lb, base_ub) = effective_bounds(model, &overrides, var);
                    let new_lb = base_lb.max(lo);
                    let new_ub = base_ub.min(hi);
                    if new_lb > new_ub + INT_EPS {
                        continue;
                    }
                    overrides.retain(|&(v, _, _)| v != var);
                    overrides.push((var, new_lb, new_ub));
                    let parent = warm_start.then(|| &*node.state);
                    if let Ok((relaxed, state)) = simplex::solve_lp_state(model, &overrides, parent)
                    {
                        let keep = incumbent
                            .as_ref()
                            .is_none_or(|inc| better(relaxed.objective, inc.objective));
                        if keep {
                            heap.push(Node {
                                bound: relaxed.objective,
                                sense: model.sense,
                                overrides,
                                relaxed,
                                state: Rc::new(state),
                            });
                        }
                    }
                }
            }
        }
    }

    vb_telemetry::counter!("solver.mip_nodes_expanded").add(explored as u64);
    vb_telemetry::counter!("solver.mip_nodes_pruned").add(pruned);
    vb_telemetry::counter!("solver.mip_incumbent_improvements").add(improvements);
    vb_telemetry::histogram!("solver.mip_nodes_per_solve").observe(explored as f64);

    incumbent.ok_or(if budget_exhausted {
        SolveError::IterationLimit
    } else {
        SolveError::Infeasible
    })
}

/// Greedy rounding dive: repeatedly fix the most fractional integer
/// variable to its nearest value (trying the other direction on
/// infeasibility) until the relaxation is integral. Returns the rounded
/// solution when the dive survives to the bottom. Each fix warm-starts
/// from the previous level's basis.
fn dive(
    model: &Model,
    int_vars: &[VarId],
    mut relaxed: Solution,
    root_state: &SimplexState,
    warm_start: bool,
) -> Option<Solution> {
    let mut overrides: Vec<(VarId, f64, f64)> = Vec::new();
    let mut state = root_state.clone();
    loop {
        let Some((var, value)) = most_fractional(&relaxed, int_vars) else {
            return Some(snap(&relaxed, int_vars));
        };
        let (lb, ub) = (model.vars[var.0].lb, model.vars[var.0].ub);
        let nearest = value.round().clamp(lb.ceil(), ub.floor());
        let other = (if nearest > value {
            value.floor()
        } else {
            value.ceil()
        })
        .clamp(lb.ceil(), ub.floor());
        let mut fixed = false;
        for candidate in [nearest, other] {
            let mut trial = overrides.clone();
            trial.retain(|&(v, _, _)| v != var);
            trial.push((var, candidate, candidate));
            let parent = warm_start.then_some(&state);
            if let Ok((sol, st)) = simplex::solve_lp_state(model, &trial, parent) {
                overrides = trial;
                relaxed = sol;
                state = st;
                fixed = true;
                break;
            }
        }
        if !fixed {
            return None;
        }
    }
}

/// Current bounds of `var` under the model plus overrides.
fn effective_bounds(model: &Model, overrides: &[(VarId, f64, f64)], var: VarId) -> (f64, f64) {
    overrides
        .iter()
        .find(|&&(v, _, _)| v == var)
        .map(|&(_, l, u)| (l, u))
        .unwrap_or((model.vars[var.0].lb, model.vars[var.0].ub))
}

/// The integer variable whose relaxed value is farthest from integral.
fn most_fractional(sol: &Solution, int_vars: &[VarId]) -> Option<(VarId, f64)> {
    let mut best: Option<(VarId, f64, f64)> = None;
    for &v in int_vars {
        let x = sol.value(v);
        let frac = (x - x.round()).abs();
        if frac > INT_EPS {
            let dist = (x - x.floor() - 0.5).abs(); // 0 = most fractional
            if best.is_none_or(|(_, _, d)| dist < d) {
                best = Some((v, x, dist));
            }
        }
    }
    best.map(|(v, x, _)| (v, x))
}

/// Round integer variables exactly onto the grid.
fn snap(sol: &Solution, int_vars: &[VarId]) -> Solution {
    let mut values = sol.values().to_vec();
    for &v in int_vars {
        values[v.0] = values[v.0].round();
    }
    Solution::new(sol.objective, values)
}

/// Branch & bound search node, ordered so the heap pops the best bound
/// first (largest for maximisation, smallest for minimisation). Carries
/// the node's optimal simplex state so children can warm-start from it.
struct Node {
    bound: f64,
    sense: Sense,
    overrides: Vec<(VarId, f64, f64)>,
    relaxed: Solution,
    state: Rc<SimplexState>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        let ord = self.bound.total_cmp(&other.bound);
        match self.sense {
            Sense::Maximize => ord,
            Sense::Minimize => ord.reverse(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    #[test]
    fn knapsack_is_solved_exactly() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30],
        // capacity 50 -> take items 2 and 3, value 220.
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<VarId> = (0..3).map(|i| m.bin_var(&format!("x{i}"))).collect();
        let e = m.expr(&[(x[0], 10.0), (x[1], 20.0), (x[2], 30.0)]);
        m.add_le(e, 50.0);
        let obj = m.expr(&[(x[0], 60.0), (x[1], 100.0), (x[2], 120.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 220.0).abs() < 1e-6);
        assert_eq!(s.int_value(x[0]), 0);
        assert_eq!(s.int_value(x[1]), 1);
        assert_eq!(s.int_value(x[2]), 1);
    }

    #[test]
    fn integer_rounding_is_not_lp_rounding() {
        // max x + y s.t. 2x + 2y <= 3, integers -> LP gives 1.5, MIP 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 5.0);
        let y = m.int_var("y", 0.0, 5.0);
        let e = m.expr(&[(x, 2.0), (y, 2.0)]);
        m.add_le(e, 3.0);
        let obj = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn mixed_integer_and_continuous() {
        // max 2x + y, x integer <= 2.5 bound via constraint, y cont <= 1.7.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.var("y", 0.0, 10.0);
        let e1 = m.expr(&[(x, 1.0)]);
        m.add_le(e1, 2.5);
        let e2 = m.expr(&[(y, 1.0)]);
        m.add_le(e2, 1.7);
        let obj = m.expr(&[(x, 2.0), (y, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
        assert!((s.value(y) - 1.7).abs() < 1e-6);
        assert!((s.objective - 5.7).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip_is_reported() {
        // x + y = 1 with x, y binary and x + y >= 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.bin_var("x");
        let y = m.bin_var("y");
        let e = m.expr(&[(x, 1.0), (y, 1.0)]);
        m.add_ge(e, 3.0);
        let obj = m.expr(&[(x, 1.0)]);
        m.set_objective(obj);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn minimization_mip() {
        // min 3x + 4y s.t. x + 2y >= 5, integers >= 0.
        // Candidates: (5,0)=15, (3,1)=13, (1,2)=11, (0,3)=12 -> 11.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 100.0);
        let y = m.int_var("y", 0.0, 100.0);
        let e = m.expr(&[(x, 1.0), (y, 2.0)]);
        m.add_ge(e, 5.0);
        let obj = m.expr(&[(x, 3.0), (y, 4.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 11.0).abs() < 1e-6, "obj {}", s.objective);
        assert_eq!((s.int_value(x), s.int_value(y)), (1, 2));
    }

    #[test]
    fn equality_constrained_assignment() {
        // Assign 2 apps to 2 sites, each app exactly once, site 0 holds
        // only one app. Costs: a0s0=1, a0s1=5, a1s0=2, a1s1=4.
        // Best: a0->s0 (1), a1->s1 (4) = 5.
        let mut m = Model::new(Sense::Minimize);
        let a0s0 = m.bin_var("a0s0");
        let a0s1 = m.bin_var("a0s1");
        let a1s0 = m.bin_var("a1s0");
        let a1s1 = m.bin_var("a1s1");
        let e1 = m.expr(&[(a0s0, 1.0), (a0s1, 1.0)]);
        m.add_eq(e1, 1.0);
        let e2 = m.expr(&[(a1s0, 1.0), (a1s1, 1.0)]);
        m.add_eq(e2, 1.0);
        let e3 = m.expr(&[(a0s0, 1.0), (a1s0, 1.0)]);
        m.add_le(e3, 1.0);
        let obj = m.expr(&[(a0s0, 1.0), (a0s1, 5.0), (a1s0, 2.0), (a1s1, 4.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
        assert_eq!(s.int_value(a0s0), 1);
        assert_eq!(s.int_value(a1s1), 1);
    }

    #[test]
    fn objective_constant_survives_branching() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        let e = m.expr(&[(x, 2.0)]);
        m.add_ge(e, 3.0); // x >= 1.5 -> x = 2
        let obj = LinExpr::term(x, 1.0).add_const(7.0);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 2);
        assert!((s.objective - 9.0).abs() < 1e-6);
    }

    #[test]
    fn minimax_pattern_used_by_mip_peak() {
        // The O2 objective is modelled as min z with z >= load_i. Mixing
        // a continuous z with binary placement vars must work.
        // Two items of sizes 3 and 5 onto two sites; minimise the peak.
        let mut m = Model::new(Sense::Minimize);
        let z = m.var("z", 0.0, f64::INFINITY);
        let x0 = m.bin_var("item0_site0");
        let x1 = m.bin_var("item1_site0");
        // Site 0 load = 3 x0 + 5 x1; site 1 load = 3(1-x0) + 5(1-x1).
        let e1 = m.expr(&[(x0, 3.0), (x1, 5.0), (z, -1.0)]);
        m.add_le(e1, 0.0);
        let e2 = m.expr(&[(x0, -3.0), (x1, -5.0), (z, -1.0)]);
        m.add_le(e2, -8.0);
        let obj = m.expr(&[(z, 1.0)]);
        m.set_objective(obj);
        let s = m.solve().unwrap();
        // Best split: 5 on one site, 3 on the other -> peak 5.
        assert!((s.objective - 5.0).abs() < 1e-6, "obj {}", s.objective);
    }

    /// A placement-shaped MIP: `apps` binaries per site, each app on
    /// exactly one site, per-site capacity, cost per placement.
    fn placement_model(apps: usize, sites: usize, seed: u64) -> Model {
        let mut rng = seed;
        let mut next = || {
            // SplitMix64 — deterministic, no external RNG needed here.
            rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let mut m = Model::new(Sense::Minimize);
        let mut x = vec![vec![]; apps];
        for (a, row) in x.iter_mut().enumerate() {
            for s in 0..sites {
                row.push(m.bin_var(&format!("a{a}s{s}")));
            }
        }
        for row in &x {
            let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            let e = m.expr(&terms);
            m.add_eq(e, 1.0);
        }
        let sizes: Vec<f64> = (0..apps).map(|_| 1.0 + (next() * 3.0).round()).collect();
        for s in 0..sites {
            let terms: Vec<(VarId, f64)> = x.iter().zip(&sizes).map(|(r, &c)| (r[s], c)).collect();
            let e = m.expr(&terms);
            let cap = sizes.iter().sum::<f64>() / sites as f64 * 1.6 + 2.0;
            m.add_le(e, cap);
        }
        let mut obj_terms = Vec::new();
        for row in &x {
            for &v in row {
                obj_terms.push((v, (next() * 10.0).round() + 1.0));
            }
        }
        let e = m.expr(&obj_terms);
        m.set_objective(e);
        m
    }

    /// A small placement MIP with a parameterised capacity vector — the
    /// same structure every epoch, only the capacity RHS moves. Distinct
    /// costs make the integer optimum unique.
    fn epoch_placement(caps: [f64; 2]) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let sizes = [2.0, 3.0, 1.0, 4.0];
        let costs = [[1.0, 6.0], [5.0, 2.0], [3.0, 4.0], [7.0, 1.5]];
        let mut x = Vec::new();
        for a in 0..4 {
            let row: Vec<VarId> = (0..2).map(|s| m.bin_var(&format!("a{a}s{s}"))).collect();
            let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
            let e = m.expr(&terms);
            m.add_eq(e, 1.0);
            x.push(row);
        }
        for s in 0..2 {
            let terms: Vec<(VarId, f64)> =
                x.iter().zip(&sizes).map(|(row, &c)| (row[s], c)).collect();
            let e = m.expr(&terms);
            m.add_le(e, caps[s]);
        }
        let mut obj = Vec::new();
        for (a, row) in x.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                obj.push((v, costs[a][s]));
            }
        }
        let e = m.expr(&obj);
        m.set_objective(e);
        m
    }

    #[test]
    fn epoch_warm_solves_match_the_cold_path() {
        // Cross-epoch reuse must change only the pivot count, never the
        // schedule: every epoch's solution must equal the cold solve's.
        let mut cache: Option<EpochCache> = None;
        let epochs = [[6.0, 6.0], [5.0, 8.0], [8.0, 4.0], [6.0, 6.0], [7.0, 7.0]];
        for (k, caps) in epochs.into_iter().enumerate() {
            let m = epoch_placement(caps);
            let (warm, next, hit) = solve_mip_epoch(&m, MAX_NODES, cache.as_ref()).unwrap();
            let cold = solve_mip_bounded_with(&m, MAX_NODES, true).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-9,
                "epoch {k}: warm obj {} vs cold {}",
                warm.objective,
                cold.objective
            );
            for j in 0..8 {
                assert_eq!(
                    warm.int_value(VarId(j)),
                    cold.int_value(VarId(j)),
                    "epoch {k}: placement diverged on var {j}"
                );
            }
            assert_eq!(hit, k > 0, "epoch {k}: unexpected warm status");
            cache = Some(next);
        }
    }

    #[test]
    fn epoch_cache_misses_on_structure_change() {
        let m = epoch_placement([6.0, 6.0]);
        let (_, cache, hit) = solve_mip_epoch(&m, MAX_NODES, None).unwrap();
        assert!(!hit, "first epoch has no cache to hit");
        assert_eq!(cache.nnz(), 8 + 8);

        // A moved coefficient (app 0 grows) must force the cold path —
        // and still solve correctly.
        let mut grown = epoch_placement([6.0, 6.0]);
        grown.constraints[4].coefs[0].1 = 2.5;
        let (sol, _, hit) = solve_mip_epoch(&grown, MAX_NODES, Some(&cache)).unwrap();
        assert!(!hit, "structure change must miss");
        assert!(sol.objective.is_finite());
    }

    #[test]
    fn warm_and_cold_branch_and_bound_agree() {
        // Warm-started B&B must reach the same optimum as cold-started
        // B&B on placement-shaped MIPs (the Table 1 workload shape).
        for seed in 0..8u64 {
            let m = placement_model(6, 3, seed * 7 + 1);
            let warm = solve_mip_bounded_with(&m, MAX_NODES, true).unwrap();
            let cold = solve_mip_bounded_with(&m, MAX_NODES, false).unwrap();
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "seed {seed}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn repeated_solves_are_deterministic() {
        // Fixed pivot tie-breaking: the same model must produce the
        // same placement vector every time, warm or not.
        let m = placement_model(6, 3, 42);
        let first = solve_mip(&m).unwrap();
        for _ in 0..3 {
            let again = solve_mip(&m).unwrap();
            assert_eq!(first.values(), again.values());
        }
    }
}
