//! Optimization model builder.
//!
//! A thin, explicit modelling layer: create variables (continuous or
//! integer, with bounds), build [`LinExpr`] linear expressions over them,
//! add `≤ / ≥ / =` constraints, set an objective, and call
//! [`Model::solve`]. Solving dispatches to the pure-LP simplex when no
//! integer variable exists and to branch & bound otherwise.

use crate::branch;
use crate::simplex;

/// Coefficients at or below this magnitude are dropped during
/// canonicalization — they are numerical noise and would only bloat the
/// sparse rows.
const COEF_EPS: f64 = 1e-12;

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Less-than-or-equal constraint.
    Le,
    /// Greater-than-or-equal constraint.
    Ge,
    /// Equality constraint.
    Eq,
}

/// A linear expression `Σ coef·var + constant`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms; duplicates are summed.
    pub terms: Vec<(VarId, f64)>,
    /// Additive constant.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A single term `coef·var`.
    pub fn term(var: VarId, coef: f64) -> LinExpr {
        LinExpr {
            terms: vec![(var, coef)],
            constant: 0.0,
        }
    }

    /// Add `coef·var` in place (builder style).
    pub fn add_term(mut self, var: VarId, coef: f64) -> LinExpr {
        self.terms.push((var, coef));
        self
    }

    /// Add a constant in place (builder style).
    pub fn add_const(mut self, c: f64) -> LinExpr {
        self.constant += c;
        self
    }

    /// Sum with another expression.
    pub fn plus(mut self, other: &LinExpr) -> LinExpr {
        self.terms.extend_from_slice(&other.terms);
        self.constant += other.constant;
        self
    }

    /// Evaluate against an assignment indexed by variable id.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.0])
                .sum::<f64>()
    }

    /// Canonicalize in place: sort terms by variable id, sum duplicate
    /// `(var, coef)` entries, and drop ~zero coefficients. `add_term` /
    /// `plus` just push, so expressions built incrementally may carry
    /// duplicates until the model canonicalizes them at row/objective
    /// construction time.
    pub fn canonicalize(&mut self) {
        self.terms.sort_by_key(|&(v, _)| v.0);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some(&mut (lv, ref mut lc)) if lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c.abs() > COEF_EPS);
        self.terms = out;
    }
}

/// A model variable's metadata.
#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub integer: bool,
}

/// A linear constraint `expr cmp rhs`, stored sparsely: `coefs` holds
/// only nonzero `(var, coef)` entries, sorted by variable id with
/// duplicates already summed (the canonical form produced by
/// [`LinExpr::canonicalize`]).
#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub coefs: Vec<(VarId, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Why a solve failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// The model is malformed (e.g. lb > ub).
    BadModel(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "model is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::BadModel(why) => write!(f, "bad model: {why}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Value per variable, indexed by [`VarId`].
    values: Vec<f64>,
}

impl Solution {
    pub(crate) fn new(objective: f64, values: Vec<f64>) -> Solution {
        Solution { objective, values }
    }

    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Value of a variable rounded to the nearest integer (for integer
    /// variables, which branch & bound returns within tolerance).
    pub fn int_value(&self, var: VarId) -> i64 {
        self.values[var.0].round() as i64
    }

    /// All variable values, indexed by [`VarId`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// An optimization model under construction.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Vec<(VarId, f64)>,
    pub(crate) objective_const: f64,
}

impl Model {
    /// An empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Model {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
            objective_const: 0.0,
        }
    }

    /// Add a continuous variable with bounds `[lb, ub]` (`ub` may be
    /// `f64::INFINITY`).
    pub fn var(&mut self, name: &str, lb: f64, ub: f64) -> VarId {
        self.push_var(name, lb, ub, false)
    }

    /// Add an integer variable with bounds `[lb, ub]`.
    pub fn int_var(&mut self, name: &str, lb: f64, ub: f64) -> VarId {
        self.push_var(name, lb, ub, true)
    }

    /// Add a binary (0/1) variable.
    pub fn bin_var(&mut self, name: &str) -> VarId {
        self.push_var(name, 0.0, 1.0, true)
    }

    fn push_var(&mut self, name: &str, lb: f64, ub: f64, integer: bool) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.to_string(),
            lb,
            ub,
            integer,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Build an expression from `(var, coef)` pairs.
    pub fn expr(&self, terms: &[(VarId, f64)]) -> LinExpr {
        LinExpr {
            terms: terms.to_vec(),
            constant: 0.0,
        }
    }

    /// Add `expr ≤ rhs`.
    pub fn add_le(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, Cmp::Le, rhs);
    }

    /// Add `expr ≥ rhs`.
    pub fn add_ge(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, Cmp::Ge, rhs);
    }

    /// Add `expr = rhs`.
    pub fn add_eq(&mut self, expr: LinExpr, rhs: f64) {
        self.add_constraint(expr, Cmp::Eq, rhs);
    }

    /// Add a constraint with an explicit comparison operator. The
    /// expression is canonicalized (duplicates summed, ~zero terms
    /// dropped) and its constant is folded into the right-hand side.
    pub fn add_constraint(&mut self, mut expr: LinExpr, cmp: Cmp, rhs: f64) {
        expr.canonicalize();
        self.constraints.push(Constraint {
            coefs: expr.terms,
            cmp,
            rhs: rhs - expr.constant,
        });
    }

    /// Set the objective expression (canonicalized like constraints).
    pub fn set_objective(&mut self, mut expr: LinExpr) {
        expr.canonicalize();
        self.objective = expr.terms;
        self.objective_const = expr.constant;
    }

    /// Solve the model: pure simplex when every variable is continuous,
    /// branch & bound otherwise.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        if self.vars.iter().any(|v| v.integer) {
            branch::solve_mip(self)
        } else {
            simplex::solve_lp(self, &[])
        }
    }

    /// Solve with a branch & bound node budget: an *anytime* solve that
    /// returns the best incumbent found when the budget runs out (exact
    /// when the search finishes earlier). Continuous models ignore the
    /// budget.
    pub fn solve_bounded(&self, max_nodes: usize) -> Result<Solution, SolveError> {
        self.validate()?;
        if self.vars.iter().any(|v| v.integer) {
            branch::solve_mip_bounded(self, max_nodes)
        } else {
            simplex::solve_lp(self, &[])
        }
    }

    /// Solve the LP relaxation (integrality dropped), optionally with
    /// extra per-variable bound overrides `(var, lb, ub)`.
    pub fn solve_relaxation(
        &self,
        bound_overrides: &[(VarId, f64, f64)],
    ) -> Result<Solution, SolveError> {
        self.validate()?;
        simplex::solve_lp(self, bound_overrides)
    }

    pub(crate) fn validate(&self) -> Result<(), SolveError> {
        for v in &self.vars {
            if v.lb > v.ub {
                return Err(SolveError::BadModel(format!(
                    "variable {} has lb {} > ub {}",
                    v.name, v.lb, v.ub
                )));
            }
            if !v.lb.is_finite() {
                return Err(SolveError::BadModel(format!(
                    "variable {} must have a finite lower bound",
                    v.name
                )));
            }
            if v.integer && !v.ub.is_finite() {
                return Err(SolveError::BadModel(format!(
                    "integer variable {} must have a finite upper bound",
                    v.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval_includes_constant_and_duplicates() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 10.0);
        let e = LinExpr::term(x, 2.0).add_term(x, 3.0).add_const(1.0);
        assert_eq!(e.eval(&[2.0]), 11.0);
    }

    #[test]
    fn canonicalize_sums_duplicates_and_drops_zeros() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 10.0);
        let y = m.var("y", 0.0, 10.0);
        let z = m.var("z", 0.0, 10.0);
        // Out of order, duplicated, with terms that cancel exactly.
        let mut e = LinExpr::term(z, 4.0)
            .add_term(x, 2.0)
            .add_term(y, -1.5)
            .add_term(x, 3.0)
            .add_term(y, 1.5)
            .add_term(z, 1e-13);
        e.canonicalize();
        assert_eq!(e.terms, vec![(x, 5.0), (z, 4.0 + 1e-13)]);

        // Row construction canonicalizes too: the stored constraint has
        // one summed entry per variable, sorted, zeros gone.
        let row = LinExpr::term(y, 1.0)
            .add_term(x, 2.0)
            .add_term(y, -1.0)
            .add_term(x, 1.0);
        m.add_le(row, 7.0);
        assert_eq!(m.constraints[0].coefs, vec![(x, 3.0)]);
    }

    #[test]
    fn expr_plus_merges() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 1.0);
        let y = m.var("y", 0.0, 1.0);
        let e = LinExpr::term(x, 1.0).plus(&LinExpr::term(y, 2.0).add_const(3.0));
        assert_eq!(e.eval(&[1.0, 1.0]), 6.0);
    }

    #[test]
    fn constraint_folds_expression_constant() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.var("x", 0.0, 10.0);
        // x + 5 <= 7   ≡   x <= 2
        m.add_le(LinExpr::term(x, 1.0).add_const(5.0), 7.0);
        assert_eq!(m.constraints[0].rhs, 2.0);
    }

    #[test]
    fn validate_rejects_inverted_bounds() {
        let mut m = Model::new(Sense::Minimize);
        m.var("x", 3.0, 1.0);
        assert!(matches!(m.solve(), Err(SolveError::BadModel(_))));
    }

    #[test]
    fn validate_rejects_unbounded_integer() {
        let mut m = Model::new(Sense::Minimize);
        m.int_var("x", 0.0, f64::INFINITY);
        assert!(matches!(m.solve(), Err(SolveError::BadModel(_))));
    }

    #[test]
    fn errors_display() {
        assert_eq!(SolveError::Infeasible.to_string(), "model is infeasible");
        assert!(SolveError::BadModel("x".into()).to_string().contains('x'));
    }
}
