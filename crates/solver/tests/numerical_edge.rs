//! Property-based numerical-edge tests for the factorized revised
//! simplex ([`vb_solver::revised`]), differential against the dense
//! row-expansion oracle ([`vb_solver::dense::solve_lp_reference`]):
//!
//! 1. **near-degenerate** LPs — stacked copies of the same row with
//!    RHS values an epsilon apart, so the ratio test ties across many
//!    rows and pivots make little or no objective progress. Solved
//!    with a tiny `refactor_after` so the scheduled-refactorization
//!    path runs every couple of pivots, and with a tiny `bland_after`
//!    so the Bland anti-cycling fallback engages *under steepest-edge
//!    pricing* (the weighted rule must coexist with index-order entry);
//! 2. **rank-deficient-after-presolve** LPs — singleton equality rows
//!    fix a subset of variables; presolve substitutes them out, which
//!    can leave duplicated or zeroed rows in the reduced model. The
//!    revised engine must solve the *reduced* model (phase 1 freezes
//!    the redundant rows' artificials) and postsolve must agree with
//!    the oracle on the original.
//!
//! Every case cross-checks all three pricing rules, so steepest-edge
//! weight maintenance is differentially pinned to Dantzig on exactly
//! the instances where degeneracy makes weights drift.

use proptest::prelude::*;
use vb_solver::dense::solve_lp_reference;
use vb_solver::presolve::presolve_lp;
use vb_solver::revised::{self, Params};
use vb_solver::{Model, Pricing, Sense, Solution, SolveError, VarId};

const TOL: f64 = 1e-6;

fn assert_agree(
    label: &str,
    got: &Result<Solution, SolveError>,
    oracle: &Result<Solution, SolveError>,
) {
    match (got, oracle) {
        (Ok(a), Ok(b)) => assert!(
            (a.objective - b.objective).abs() < TOL,
            "{label}: objectives diverge: revised {} vs oracle {}",
            a.objective,
            b.objective
        ),
        (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
        (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
        (a, b) => panic!("{label}: status diverges: revised {a:?} vs oracle {b:?}"),
    }
}

/// A near-degenerate LP: `copies` stacked `≤` rows share one left-hand
/// side over all variables, with RHS values `base + k·eps` — at the
/// optimum many slacks sit within `eps` of zero, so ratio-test ties and
/// zero-progress pivots are the common case, not the exception.
#[derive(Debug, Clone)]
struct DegenerateSpec {
    maximize: bool,
    coefs: Vec<i32>,
    obj: Vec<i32>,
    copies: usize,
    base: i32,
    /// RHS spacing selector: 0 → exactly equal RHS, else `10^-6`.
    spacing: u32,
}

fn degenerate_spec(n: usize) -> impl Strategy<Value = DegenerateSpec> {
    (
        any::<bool>(),
        proptest::collection::vec(0..=3i32, n),
        proptest::collection::vec(-3..=3i32, n),
        2..6usize,
        1..=8i32,
        0..2u32,
    )
        .prop_map(
            |(maximize, coefs, obj, copies, base, spacing)| DegenerateSpec {
                maximize,
                coefs,
                obj,
                copies,
                base,
                spacing,
            },
        )
}

fn build_degenerate(spec: &DegenerateSpec) -> Model {
    let sense = if spec.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<VarId> = (0..spec.coefs.len())
        .map(|j| m.var(&format!("x{j}"), 0.0, 6.0))
        .collect();
    let eps = if spec.spacing == 0 { 0.0 } else { 1e-6 };
    for k in 0..spec.copies {
        let terms: Vec<(VarId, f64)> = vars
            .iter()
            .zip(&spec.coefs)
            .filter(|&(_, &c)| c != 0)
            .map(|(&v, &c)| (v, c as f64))
            .collect();
        if terms.is_empty() {
            break;
        }
        let e = m.expr(&terms);
        m.add_le(e, spec.base as f64 + k as f64 * eps);
    }
    let obj: Vec<(VarId, f64)> = vars
        .iter()
        .zip(&spec.obj)
        .map(|(&v, &c)| (v, c as f64))
        .collect();
    let e = m.expr(&obj);
    m.set_objective(e);
    m
}

/// Singleton-pinned placement-flavoured LP whose reduced model is prone
/// to redundant (rank-deficient) rows: `x_j = fix_j` singleton equality
/// rows alongside a shared coupling row. After presolve substitutes the
/// pinned variables, the coupling rows collapse toward duplicates of
/// each other (or all-zero rows when everything in them was pinned).
#[derive(Debug, Clone)]
struct PinnedSpec {
    pins: Vec<(u32, i32)>,
    coefs: Vec<i32>,
    obj: Vec<i32>,
    rhs: i32,
}

fn pinned_spec(n: usize) -> impl Strategy<Value = PinnedSpec> {
    (
        proptest::collection::vec((0..3u32, 0..=3i32), n),
        proptest::collection::vec(1..=3i32, n),
        proptest::collection::vec(-4..=4i32, n),
        4..=20i32,
    )
        .prop_map(|(pins, coefs, obj, rhs)| PinnedSpec {
            pins,
            coefs,
            obj,
            rhs,
        })
}

fn build_pinned(spec: &PinnedSpec) -> Model {
    let n = spec.coefs.len();
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<VarId> = (0..n).map(|j| m.var(&format!("x{j}"), 0.0, 5.0)).collect();
    // Two copies of the coupling row (one ≤, one ≥ with slack) so that
    // after substitution a pair of structurally dependent rows remains.
    let terms: Vec<(VarId, f64)> = vars
        .iter()
        .zip(&spec.coefs)
        .map(|(&v, &c)| (v, c as f64))
        .collect();
    let e = m.expr(&terms);
    m.add_le(e, spec.rhs as f64);
    let e = m.expr(&terms);
    m.add_ge(e, -(spec.rhs as f64));
    for (j, &(keep, fix)) in spec.pins.iter().enumerate() {
        // ~1/3 of the variables get pinned by a singleton equality.
        if keep == 0 {
            let e = m.expr(&[(vars[j], 1.0)]);
            m.add_eq(e, fix as f64);
        }
    }
    let obj: Vec<(VarId, f64)> = vars
        .iter()
        .zip(&spec.obj)
        .map(|(&v, &c)| (v, c as f64))
        .collect();
    let e = m.expr(&obj);
    m.set_objective(e);
    m
}

const PRICINGS: [Pricing; 3] = [Pricing::Dantzig, Pricing::Devex, Pricing::SteepestEdge];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Near-degenerate instances under a refactorize-every-2-pivots
    /// schedule: the scheduled refactorization path (fresh Markowitz
    /// factorization + recomputed basic values) must be invisible in
    /// the results under every pricing rule.
    #[test]
    fn degenerate_with_tiny_refactor_interval_matches_oracle(spec in degenerate_spec(6)) {
        let m = build_degenerate(&spec);
        let oracle = solve_lp_reference(&m, &[]);
        for pricing in PRICINGS {
            let params = Params { refactor_after: 2, ..Params::default() };
            let got = revised::solve_lp_state_params(&m, &[], None, pricing, params)
                .map(|(sol, _)| sol);
            assert_agree(&format!("refactor_after=2 {pricing:?}"), &got, &oracle);
        }
    }

    /// The same instances with the Bland anti-cycling fallback forced
    /// almost immediately (`bland_after: 3`): index-order entry must
    /// override steepest-edge/devex weights without disagreeing with
    /// the oracle — degeneracy-heavy models are exactly where Bland
    /// engages in production.
    #[test]
    fn degenerate_bland_fallback_matches_oracle(spec in degenerate_spec(6)) {
        let m = build_degenerate(&spec);
        let oracle = solve_lp_reference(&m, &[]);
        for pricing in PRICINGS {
            let params = Params { bland_after: 3, ..Params::default() };
            let got = revised::solve_lp_state_params(&m, &[], None, pricing, params)
                .map(|(sol, _)| sol);
            assert_agree(&format!("bland_after=3 {pricing:?}"), &got, &oracle);
        }
    }

    /// Rank-deficient-after-presolve round trip: presolve the pinned
    /// model, solve the reduced LP on the factorized engine (phase 1
    /// must freeze the redundant rows' artificials), postsolve, and
    /// compare with the oracle on the *original* model.
    #[test]
    fn rank_deficient_after_presolve_matches_oracle(spec in pinned_spec(8)) {
        let m = build_pinned(&spec);
        let oracle = solve_lp_reference(&m, &[]);
        match presolve_lp(&m) {
            // Presolve may prove infeasibility on its own; the oracle
            // must agree.
            Err(e) => assert_agree("presolve-infeasible", &Err(e), &oracle),
            Ok(pre) => {
                for pricing in PRICINGS {
                    let got = revised::solve_lp_state(pre.reduced(), &[], None, pricing)
                        .map(|(sol, _)| pre.postsolve(&m, &sol));
                    assert_agree(&format!("presolve {pricing:?}"), &got, &oracle);
                }
            }
        }
    }
}
