//! Property tests: the branch & bound solver must agree with brute-force
//! enumeration on randomly generated small integer programs, and the LP
//! relaxation must always bound the MIP optimum.

use proptest::prelude::*;
use vb_solver::{Model, Sense, VarId};

/// A randomly generated bounded integer program:
/// max/min c·x  s.t.  A x ≤ b,  x ∈ {0..3}^n.
#[derive(Debug, Clone)]
struct RandomIp {
    maximize: bool,
    c: Vec<i32>,
    a: Vec<Vec<i32>>,
    b: Vec<i32>,
}

fn random_ip(n_vars: usize, n_cons: usize) -> impl Strategy<Value = RandomIp> {
    (
        any::<bool>(),
        proptest::collection::vec(-5..=5i32, n_vars),
        proptest::collection::vec(proptest::collection::vec(-3..=4i32, n_vars), n_cons),
        proptest::collection::vec(0..=12i32, n_cons),
    )
        .prop_map(|(maximize, c, a, b)| RandomIp { maximize, c, a, b })
}

/// Exhaustive optimum over x ∈ {0..3}^n (n ≤ 4 keeps this ≤ 256 points).
fn brute_force(ip: &RandomIp) -> Option<(f64, Vec<i32>)> {
    let n = ip.c.len();
    let mut best: Option<(f64, Vec<i32>)> = None;
    let mut x = vec![0i32; n];
    loop {
        let feasible =
            ip.a.iter()
                .zip(&ip.b)
                .all(|(row, &b)| row.iter().zip(&x).map(|(&a, &v)| a * v).sum::<i32>() <= b);
        if feasible {
            let obj: i32 = ip.c.iter().zip(&x).map(|(&c, &v)| c * v).sum();
            let obj = obj as f64;
            let better = match &best {
                None => true,
                Some((bo, _)) => {
                    if ip.maximize {
                        obj > *bo
                    } else {
                        obj < *bo
                    }
                }
            };
            if better {
                best = Some((obj, x.clone()));
            }
        }
        // Odometer increment over {0..3}^n.
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            x[i] += 1;
            if x[i] <= 3 {
                break;
            }
            x[i] = 0;
            i += 1;
        }
    }
}

fn build_model(ip: &RandomIp) -> (Model, Vec<VarId>) {
    let sense = if ip.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<VarId> = (0..ip.c.len())
        .map(|i| m.int_var(&format!("x{i}"), 0.0, 3.0))
        .collect();
    for (row, &b) in ip.a.iter().zip(&ip.b) {
        let terms: Vec<(VarId, f64)> = vars.iter().zip(row).map(|(&v, &a)| (v, a as f64)).collect();
        let e = m.expr(&terms);
        m.add_le(e, b as f64);
    }
    let obj_terms: Vec<(VarId, f64)> = vars
        .iter()
        .zip(&ip.c)
        .map(|(&v, &c)| (v, c as f64))
        .collect();
    let e = m.expr(&obj_terms);
    m.set_objective(e);
    (m, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn branch_and_bound_matches_brute_force(ip in random_ip(3, 3)) {
        let expected = brute_force(&ip);
        let (m, vars) = build_model(&ip);
        match (m.solve(), expected) {
            (Ok(sol), Some((obj, _))) => {
                prop_assert!((sol.objective - obj).abs() < 1e-6,
                    "solver {} vs brute force {obj}", sol.objective);
                // The reported assignment must itself be feasible and
                // achieve the reported objective.
                let xs: Vec<i32> = vars.iter().map(|&v| sol.int_value(v) as i32).collect();
                for (row, &b) in ip.a.iter().zip(&ip.b) {
                    let lhs: i32 = row.iter().zip(&xs).map(|(&a, &v)| a * v).sum();
                    prop_assert!(lhs <= b, "constraint violated: {lhs} > {b}");
                }
                let got: i32 = ip.c.iter().zip(&xs).map(|(&c, &v)| c * v).sum();
                prop_assert!((got as f64 - sol.objective).abs() < 1e-6);
            }
            (Err(e), None) => {
                // x = 0 is always feasible when all b >= 0, so this can't
                // happen with our generator; still, accept agreement.
                prop_assert!(matches!(e, vb_solver::SolveError::Infeasible),
                    "unexpected error {e:?}");
            }
            (Ok(sol), None) => prop_assert!(false, "solver found {sol:?}, brute force infeasible"),
            (Err(e), Some(_)) => prop_assert!(false, "solver failed {e:?} on feasible instance"),
        }
    }

    #[test]
    fn lp_relaxation_bounds_the_mip(ip in random_ip(4, 2)) {
        let (m, _) = build_model(&ip);
        if let (Ok(mip), Ok(lp)) = (m.solve(), m.solve_relaxation(&[])) {
            if ip.maximize {
                prop_assert!(lp.objective >= mip.objective - 1e-6,
                    "LP {} should upper-bound MIP {}", lp.objective, mip.objective);
            } else {
                prop_assert!(lp.objective <= mip.objective + 1e-6,
                    "LP {} should lower-bound MIP {}", lp.objective, mip.objective);
            }
        }
    }

    #[test]
    fn solutions_respect_bounds(ip in random_ip(4, 3)) {
        let (m, vars) = build_model(&ip);
        if let Ok(sol) = m.solve() {
            for &v in &vars {
                let x = sol.value(v);
                prop_assert!((-1e-6..=3.0 + 1e-6).contains(&x), "out of bounds: {x}");
                prop_assert!((x - x.round()).abs() < 1e-6, "not integral: {x}");
            }
        }
    }
}
