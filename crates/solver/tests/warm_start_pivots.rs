//! Telemetry-backed acceptance check for the warm-started branch &
//! bound: on Table-1-shaped placement MIPs the warm path must do
//! substantially less pivot work than cold solves at every node, while
//! returning the same placements.
//!
//! Kept in its own test binary: it reads the process-global telemetry
//! registry, so it must not race with other tests mutating it.

use rand::{Rng, SeedableRng};
use vb_solver::branch::solve_mip_bounded_priced;
use vb_solver::{Model, Pricing, Sense, VarId};

/// Same shape as `vb-sched`'s MipPolicy output: app-site binaries, one
/// site per app, per-site/bucket displacement vars and costs.
fn placement_mip(rng: &mut rand::rngs::StdRng, apps: usize, sites: usize, buckets: usize) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<VarId>> = (0..apps)
        .map(|a| {
            (0..sites)
                .map(|s| m.bin_var(&format!("a{a}s{s}")))
                .collect()
        })
        .collect();
    for row in &x {
        let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        let e = m.expr(&terms);
        m.add_eq(e, 1.0);
    }
    let cores: Vec<f64> = (0..apps)
        .map(|_| rng.gen_range(1..=4) as f64 * 20.0)
        .collect();
    let total: f64 = cores.iter().sum();
    let mut objective = Vec::new();
    for s in 0..sites {
        for b in 0..buckets {
            let d = m.var(&format!("d{s}b{b}"), 0.0, f64::INFINITY);
            let frac = if rng.gen_range(0..4u32) == 0 {
                0.2
            } else {
                0.9
            };
            let capacity = total / sites as f64 * frac;
            let mut lhs = vec![(d, 1.0)];
            for (a, xr) in x.iter().enumerate() {
                lhs.push((xr[s], -cores[a]));
            }
            let e = m.expr(&lhs);
            m.add_ge(e, -capacity);
            objective.push((d, 4.0));
        }
    }
    for row in &x {
        for &v in row {
            objective.push((v, rng.gen_range(0..6) as f64));
        }
    }
    let e = m.expr(&objective);
    m.set_objective(e);
    m
}

fn pivots_for(models: &[Model], warm: bool, pricing: Pricing) -> (u64, Vec<f64>) {
    vb_telemetry::reset();
    let objectives: Vec<f64> = models
        .iter()
        .map(|m| {
            solve_mip_bounded_priced(m, 200_000, warm, pricing)
                .expect("placement MIPs are feasible")
                .objective
        })
        .collect();
    let snap = vb_telemetry::snapshot();
    (snap.counter("solver.pivots").unwrap_or(0), objectives)
}

/// One test fn (not one per pricing rule): the assertions read the
/// process-global telemetry registry, so the runs must stay sequential.
/// Steepest-edge rides the factorized engine, Dantzig/devex the
/// tableau — the warm-start contract must hold on both.
#[test]
fn warm_starts_cut_total_pivots_without_changing_placements() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7AB1E5);
    let models: Vec<Model> = (0..8)
        .map(|case| placement_mip(&mut rng, 4 + case % 3, 2 + case % 2, 3))
        .collect();

    for pricing in [Pricing::Dantzig, Pricing::Devex, Pricing::SteepestEdge] {
        let (cold_pivots, cold_obj) = pivots_for(&models, false, pricing);
        if cold_pivots == 0 {
            // Telemetry compiled out (--no-default-features): counters
            // stay zero and the ratio below is meaningless.
            return;
        }
        let (warm_pivots, warm_obj) = pivots_for(&models, true, pricing);

        for (case, (c, w)) in cold_obj.iter().zip(&warm_obj).enumerate() {
            assert!(
                (c - w).abs() < 1e-6,
                "{pricing:?} case {case}: warm objective {w} diverges from cold {c}"
            );
        }
        eprintln!(
            "{pricing:?} warm starts: {warm_pivots} pivots vs {cold_pivots} cold ({:.0}% saved)",
            100.0 * (1.0 - warm_pivots as f64 / cold_pivots as f64)
        );
        assert!(
            (warm_pivots as f64) <= 0.7 * cold_pivots as f64,
            "{pricing:?} warm start saved too little: {warm_pivots} warm vs {cold_pivots} cold"
        );
    }
}
