//! Differential tests: the bounded-variable simplex (the production
//! path) against the original row-expansion two-phase simplex kept in
//! [`vb_solver::dense`] as an oracle.
//!
//! Three layers of agreement:
//!
//! 1. random bounded LPs — both engines agree on feasibility status and
//!    objective value within tolerance;
//! 2. warm-started LPs — re-solving under branch-style bound overrides
//!    from a parent basis matches the oracle cold solve;
//! 3. Table-1-shaped placement MIPs — the production branch & bound
//!    (bounded-variable LPs + warm starts) matches a reference branch &
//!    bound driven entirely by the row-expansion oracle.

use rand::{Rng, SeedableRng};
use vb_solver::branch::solve_mip_bounded_with;
use vb_solver::dense::solve_lp_reference;
use vb_solver::simplex::{solve_lp, solve_lp_state};
use vb_solver::{Model, Sense, Solution, SolveError, VarId};

const TOL: f64 = 1e-6;

/// A random bounded LP plus the metadata an integration test cannot read
/// back out of the (deliberately opaque) `Model`: the variable handles
/// and their boxes.
struct RandomLp {
    model: Model,
    vars: Vec<VarId>,
    bounds: Vec<(f64, f64)>,
}

/// A random bounded LP: every variable in a finite box, constraints of
/// mixed senses, coefficients and bounds small enough that both engines
/// stay well-conditioned.
fn random_bounded_lp(rng: &mut rand::rngs::StdRng, n: usize, m_rows: usize) -> RandomLp {
    let maximize = rng.gen::<bool>();
    let mut model = Model::new(if maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    });
    let mut bounds = Vec::with_capacity(n);
    let vars: Vec<VarId> = (0..n)
        .map(|i| {
            let lb = rng.gen_range(-3.0..1.0f64).round();
            let ub = lb + rng.gen_range(0.0..5.0f64).round();
            bounds.push((lb, ub));
            model.var(&format!("x{i}"), lb, ub)
        })
        .collect();
    for _ in 0..m_rows {
        let terms: Vec<(VarId, f64)> = vars
            .iter()
            .filter_map(|&v| {
                let c = rng.gen_range(-3i32..=3) as f64;
                (c != 0.0).then_some((v, c))
            })
            .collect();
        if terms.is_empty() {
            continue;
        }
        let e = model.expr(&terms);
        let rhs = rng.gen_range(-6i32..=10) as f64;
        match rng.gen_range(0..3u32) {
            0 => model.add_le(e, rhs),
            1 => model.add_ge(e, rhs),
            // Equalities on random data are usually infeasible; keep
            // the third arm a loose `<=` so feasible cases stay common.
            _ => model.add_le(e, rhs.abs() + 4.0),
        }
    }
    let obj_terms: Vec<(VarId, f64)> = vars
        .iter()
        .map(|&v| (v, rng.gen_range(-5i32..=5) as f64))
        .collect();
    let e = model.expr(&obj_terms);
    model.set_objective(e);
    RandomLp {
        model,
        vars,
        bounds,
    }
}

fn assert_agree(new: &Result<Solution, SolveError>, old: &Result<Solution, SolveError>, tag: &str) {
    match (new, old) {
        (Ok(a), Ok(b)) => assert!(
            (a.objective - b.objective).abs() < TOL,
            "{tag}: objectives diverge: bounded-variable {} vs row-expansion {}",
            a.objective,
            b.objective
        ),
        (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
        (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
        (a, b) => panic!("{tag}: status diverges: bounded-variable {a:?} vs row-expansion {b:?}"),
    }
}

#[test]
fn random_bounded_lps_agree_with_the_reference_path() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1FF);
    for case in 0..200 {
        let n = 2 + (case % 7);
        let m_rows = 1 + (case % 5);
        let lp = random_bounded_lp(&mut rng, n, m_rows);
        let new = solve_lp(&lp.model, &[]);
        let old = solve_lp_reference(&lp.model, &[]);
        assert_agree(
            &new,
            &old,
            &format!("case {case} ({n} vars, {m_rows} rows)"),
        );
    }
}

#[test]
fn warm_started_resolves_agree_with_the_reference_path() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    let mut warm_cases = 0;
    for case in 0..100 {
        let n = 3 + (case % 5);
        let lp = random_bounded_lp(&mut rng, n, 2 + (case % 4));
        let Ok((_, state)) = solve_lp_state(&lp.model, &[], None) else {
            continue; // infeasible/unbounded root: nothing to warm-start
        };
        // Branch-style tightenings of one variable at a time.
        for _ in 0..3 {
            let k = rng.gen_range(0..n);
            let v = lp.vars[k];
            let (lb, ub) = lp.bounds[k];
            let cut = (lb + (ub - lb) * 0.5).floor();
            let overrides = if rng.gen::<bool>() {
                vec![(v, lb, cut.max(lb))]
            } else {
                vec![(v, cut.max(lb), ub)]
            };
            let warm = solve_lp_state(&lp.model, &overrides, Some(&state)).map(|(s, _)| s);
            let old = solve_lp_reference(&lp.model, &overrides);
            assert_agree(&warm, &old, &format!("case {case} overrides {overrides:?}"));
            warm_cases += 1;
        }
    }
    assert!(
        warm_cases > 100,
        "too few warm cases exercised: {warm_cases}"
    );
}

/// Reference branch & bound: most-fractional branching over the
/// row-expansion oracle, exhaustive (no node budget; prunes only on the
/// usual bound test). `int_vars` carries the integer variables and
/// their original boxes, since the test cannot read them off the model.
fn reference_mip(
    model: &Model,
    maximize: bool,
    int_vars: &[(VarId, f64, f64)],
) -> Result<f64, SolveError> {
    let better = |a: f64, b: f64| {
        if maximize {
            a > b + 1e-9
        } else {
            a < b - 1e-9
        }
    };
    let mut stack: Vec<Vec<(VarId, f64, f64)>> = vec![Vec::new()];
    let mut incumbent: Option<f64> = None;
    while let Some(overrides) = stack.pop() {
        let relaxed = match solve_lp_reference(model, &overrides) {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        if let Some(inc) = incumbent {
            if !better(relaxed.objective, inc) {
                continue;
            }
        }
        let frac = int_vars.iter().find_map(|&(v, vl, vu)| {
            let x = relaxed.value(v);
            ((x - x.round()).abs() > 1e-6).then_some((v, x, vl, vu))
        });
        match frac {
            None => incumbent = Some(relaxed.objective),
            Some((v, x, vl, vu)) => {
                let (lb, ub) = overrides
                    .iter()
                    .find(|&&(w, _, _)| w == v)
                    .map(|&(_, l, u)| (l, u))
                    .unwrap_or((vl, vu));
                for (nl, nu) in [(lb, x.floor()), (x.floor() + 1.0, ub)] {
                    if nl > nu + 1e-9 {
                        continue;
                    }
                    let mut child = overrides.clone();
                    child.retain(|&(w, _, _)| w != v);
                    child.push((v, nl, nu));
                    stack.push(child);
                }
            }
        }
    }
    incumbent.ok_or(SolveError::Infeasible)
}

/// A Table-1-shaped placement MIP: one binary per (app, site), each app
/// on exactly one site, per-site/bucket displacement variables with
/// `d ≥ load − capacity` rows and a displacement-minimising objective —
/// the same structure `vb-sched`'s MipPolicy emits. Returns the model
/// plus its binary variables (all boxed `[0, 1]`).
fn placement_mip(
    rng: &mut rand::rngs::StdRng,
    apps: usize,
    sites: usize,
    buckets: usize,
) -> (Model, Vec<VarId>) {
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<VarId>> = (0..apps)
        .map(|a| {
            (0..sites)
                .map(|s| m.bin_var(&format!("a{a}s{s}")))
                .collect()
        })
        .collect();
    for row in &x {
        let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        let e = m.expr(&terms);
        m.add_eq(e, 1.0);
    }
    let cores: Vec<f64> = (0..apps)
        .map(|_| rng.gen_range(1..=4) as f64 * 20.0)
        .collect();
    let total: f64 = cores.iter().sum();
    let mut objective = Vec::new();
    for s in 0..sites {
        for b in 0..buckets {
            let d = m.var(&format!("d{s}b{b}"), 0.0, f64::INFINITY);
            // Site capacity varies per bucket; some site-buckets dip.
            let frac = if rng.gen_range(0..4u32) == 0 {
                0.2
            } else {
                0.9
            };
            let capacity = total / sites as f64 * frac;
            let mut lhs = vec![(d, 1.0)];
            for (a, xr) in x.iter().enumerate() {
                lhs.push((xr[s], -cores[a]));
            }
            let e = m.expr(&lhs);
            m.add_ge(e, -capacity);
            objective.push((d, 4.0));
        }
    }
    // Mild per-placement preference costs, like the move-cost terms.
    for row in &x {
        for &v in row {
            objective.push((v, rng.gen_range(0..6) as f64));
        }
    }
    let e = m.expr(&objective);
    m.set_objective(e);
    (m, x.into_iter().flatten().collect())
}

#[test]
fn table1_shaped_mips_agree_with_the_reference_branch_and_bound() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7AB1E);
    for case in 0..12 {
        let apps = 3 + case % 3;
        let sites = 2 + case % 2;
        let (model, binaries) = placement_mip(&mut rng, apps, sites, 3);
        let int_vars: Vec<(VarId, f64, f64)> = binaries.iter().map(|&v| (v, 0.0, 1.0)).collect();
        let reference =
            reference_mip(&model, false, &int_vars).expect("placement MIPs are feasible");
        for warm in [false, true] {
            let got = solve_mip_bounded_with(&model, 200_000, warm)
                .expect("production solve must succeed");
            assert!(
                (got.objective - reference).abs() < TOL,
                "case {case} warm={warm}: production {} vs reference {}",
                got.objective,
                reference
            );
        }
    }
}
