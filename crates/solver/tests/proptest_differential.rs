//! Property-based differential tests against the row-expansion oracle
//! ([`vb_solver::dense::solve_lp_reference`]):
//!
//! 1. random *sparse* bounded LPs — the CSR production simplex and the
//!    dense oracle agree on status and objective, including expressions
//!    with duplicate terms (the canonicalization path);
//! 2. Table-1-shaped placement MIP relaxations, at the root and under
//!    branch-style bound overrides warm-started from the root basis;
//! 3. cross-epoch reuse — re-solving a structurally identical model
//!    with perturbed RHS/objective/bounds through
//!    [`vb_solver::simplex::solve_lp_epoch_warm`] must agree with a
//!    cold solve of the perturbed model whenever the repair succeeds
//!    (a failed repair is allowed: callers fall back to a cold root);
//! 4. presolve round-trips — presolve → solve the reduced model →
//!    postsolve must agree with a direct solve of the original, on both
//!    random sparse LPs and placement relaxations with branch-style
//!    singleton fixings (the rows presolve eliminates outright).

use proptest::prelude::*;
use vb_solver::dense::solve_lp_reference;
use vb_solver::presolve::presolve_lp;
use vb_solver::simplex::{solve_lp, solve_lp_epoch_warm, solve_lp_state};
use vb_solver::{Model, Sense, Solution, SolveError, VarId};

const TOL: f64 = 1e-6;

/// Declarative spec of a random sparse bounded LP. Per row entry:
/// `(keep, coef)` — the term is present iff `keep < 4` and `coef != 0`
/// (≈ 1/3 density), and `keep < 2` splits it into two half-coefficient
/// duplicates so expression canonicalization is on the differential
/// path too.
/// `(entries, cmp selector, rhs)` for one constraint row.
type RowSpec = (Vec<(u32, i32)>, u32, i32);

#[derive(Debug, Clone)]
struct SparseLp {
    maximize: bool,
    /// `(lb, width)` per variable; the box is `[lb, lb + width]`.
    bounds: Vec<(i32, i32)>,
    rows: Vec<RowSpec>,
    obj: Vec<i32>,
}

fn sparse_lp(n: usize, m_rows: usize) -> impl Strategy<Value = SparseLp> {
    (
        any::<bool>(),
        proptest::collection::vec((-3..=0i32, 0..=4i32), n),
        proptest::collection::vec(
            (
                proptest::collection::vec((0..10u32, -3..=3i32), n),
                0..3u32,
                -6..=10i32,
            ),
            m_rows,
        ),
        proptest::collection::vec(-5..=5i32, n),
    )
        .prop_map(|(maximize, bounds, rows, obj)| SparseLp {
            maximize,
            bounds,
            rows,
            obj,
        })
}

/// Materialize the spec, with per-row RHS shifts, a uniform objective
/// shift, and per-variable upper-bound shifts (all zero for the base
/// model). The constraint *structure* depends only on the spec, so any
/// two builds of the same spec are epoch-compatible.
fn build(lp: &SparseLp, rhs_shift: &[i32], obj_shift: i32, ub_shift: &[i32]) -> Model {
    let sense = if lp.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<VarId> = lp
        .bounds
        .iter()
        .enumerate()
        .map(|(j, &(lb, w))| {
            let shift = ub_shift.get(j).copied().unwrap_or(0);
            // Shrinks clamp at the lower bound so the box stays valid.
            let ub = (lb + w + shift).max(lb);
            m.var(&format!("x{j}"), lb as f64, ub as f64)
        })
        .collect();
    for (r, (entries, cmp, rhs)) in lp.rows.iter().enumerate() {
        let mut terms = Vec::new();
        for (j, &(keep, c)) in entries.iter().enumerate() {
            if keep >= 4 || c == 0 {
                continue;
            }
            if keep < 2 {
                terms.push((vars[j], c as f64 * 0.5));
                terms.push((vars[j], c as f64 * 0.5));
            } else {
                terms.push((vars[j], c as f64));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let e = m.expr(&terms);
        let rhs = (rhs + rhs_shift.get(r).copied().unwrap_or(0)) as f64;
        match cmp {
            0 => m.add_le(e, rhs),
            1 => m.add_ge(e, rhs),
            // Loose third arm keeps feasible instances common.
            _ => m.add_le(e, rhs.abs() + 4.0),
        }
    }
    let obj: Vec<(VarId, f64)> = vars
        .iter()
        .zip(&lp.obj)
        .map(|(&v, &c)| (v, (c + obj_shift) as f64))
        .collect();
    let e = m.expr(&obj);
    m.set_objective(e);
    m
}

fn assert_agree(new: &Result<Solution, SolveError>, oracle: &Result<Solution, SolveError>) {
    match (new, oracle) {
        (Ok(a), Ok(b)) => assert!(
            (a.objective - b.objective).abs() < TOL,
            "objectives diverge: sparse {} vs oracle {}",
            a.objective,
            b.objective
        ),
        (Err(SolveError::Infeasible), Err(SolveError::Infeasible)) => {}
        (Err(SolveError::Unbounded), Err(SolveError::Unbounded)) => {}
        (a, b) => panic!("status diverges: sparse {a:?} vs oracle {b:?}"),
    }
}

/// A Table-1-shaped placement model: `apps × sites` binaries with
/// one-site-per-app rows, per-(site, bucket) displacement variables,
/// displacement + per-placement costs.
#[derive(Debug, Clone)]
struct PlacementSpec {
    /// Core demand selector per app (scaled ×20).
    cores: Vec<u32>,
    /// Tight/loose capacity selector per (site, bucket).
    frac: Vec<u32>,
    /// Per-placement cost selector, row-major apps × sites.
    costs: Vec<u32>,
}

const SITES: usize = 3;
const BUCKETS: usize = 2;

fn placement_spec(apps: usize) -> impl Strategy<Value = PlacementSpec> {
    (
        proptest::collection::vec(1..=4u32, apps),
        proptest::collection::vec(0..4u32, SITES * BUCKETS),
        proptest::collection::vec(0..6u32, apps * SITES),
    )
        .prop_map(|(cores, frac, costs)| PlacementSpec { cores, frac, costs })
}

fn build_placement(spec: &PlacementSpec) -> (Model, Vec<VarId>) {
    let apps = spec.cores.len();
    let mut m = Model::new(Sense::Minimize);
    let x: Vec<Vec<VarId>> = (0..apps)
        .map(|a| {
            (0..SITES)
                .map(|s| m.bin_var(&format!("a{a}s{s}")))
                .collect()
        })
        .collect();
    for row in &x {
        let terms: Vec<(VarId, f64)> = row.iter().map(|&v| (v, 1.0)).collect();
        let e = m.expr(&terms);
        m.add_eq(e, 1.0);
    }
    let cores: Vec<f64> = spec.cores.iter().map(|&c| c as f64 * 20.0).collect();
    let total: f64 = cores.iter().sum();
    let mut objective = Vec::new();
    for s in 0..SITES {
        for b in 0..BUCKETS {
            let d = m.var(&format!("d{s}b{b}"), 0.0, f64::INFINITY);
            let frac = if spec.frac[s * BUCKETS + b] == 0 {
                0.2
            } else {
                0.9
            };
            let capacity = total / SITES as f64 * frac;
            let mut lhs = vec![(d, 1.0)];
            for (a, xr) in x.iter().enumerate() {
                lhs.push((xr[s], -cores[a]));
            }
            let e = m.expr(&lhs);
            m.add_ge(e, -capacity);
            objective.push((d, 4.0));
        }
    }
    for (a, row) in x.iter().enumerate() {
        for (s, &v) in row.iter().enumerate() {
            objective.push((v, spec.costs[a * SITES + s] as f64));
        }
    }
    let e = m.expr(&objective);
    m.set_objective(e);
    let binaries = x.into_iter().flatten().collect();
    (m, binaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sparse_lps_agree_with_the_dense_oracle(lp in sparse_lp(6, 4)) {
        let m = build(&lp, &[], 0, &[]);
        assert_agree(&solve_lp(&m, &[]), &solve_lp_reference(&m, &[]));
    }

    #[test]
    fn placement_relaxations_agree_with_the_dense_oracle(spec in placement_spec(4)) {
        let (m, binaries) = build_placement(&spec);
        let root = solve_lp_state(&m, &[], None);
        assert_agree(
            &root.as_ref().map(|(s, _)| s.clone()).map_err(Clone::clone),
            &solve_lp_reference(&m, &[]),
        );
        // Branch-style fixings warm-started from the root basis, the way
        // the branch & bound drives the simplex.
        if let Ok((_, state)) = root {
            for (k, &v) in binaries.iter().enumerate() {
                let fix = if k % 2 == 0 { 1.0 } else { 0.0 };
                let overrides = [(v, fix, fix)];
                let warm = solve_lp_state(&m, &overrides, Some(&state)).map(|(s, _)| s);
                assert_agree(&warm, &solve_lp_reference(&m, &overrides));
            }
        }
    }

    #[test]
    fn epoch_warm_resolves_agree_with_cold_solves(
        lp in sparse_lp(6, 4),
        rhs_shift in proptest::collection::vec(-2..=2i32, 4),
        obj_shift in -2..=2i32,
        ub_shift in proptest::collection::vec(-1..=1i32, 6),
    ) {
        let base = build(&lp, &[], 0, &[]);
        let Ok((sol0, state0)) = solve_lp_state(&base, &[], None) else {
            // Infeasible/unbounded base: nothing to carry across epochs.
            return;
        };

        // Epoch with nothing changed: the retained state is already
        // optimal, so the repair must succeed and reproduce the optimum.
        let (same, _) = solve_lp_epoch_warm(&base, &state0)
            .expect("unchanged epoch must warm-start");
        assert!(
            (same.objective - sol0.objective).abs() < TOL,
            "unchanged epoch drifted: {} vs {}",
            same.objective,
            sol0.objective
        );

        // Perturbed epoch: when the dual repair succeeds it must match a
        // cold solve of the perturbed model (and the dense oracle). A
        // failed repair is not a feasibility certificate — callers fall
        // back to a cold root — so `Err` makes no claim here.
        let next = build(&lp, &rhs_shift, obj_shift, &ub_shift);
        if let Ok((warm, _)) = solve_lp_epoch_warm(&next, &state0) {
            let cold = solve_lp(&next, &[]);
            assert_agree(&Ok(warm), &cold);
            assert_agree(&cold, &solve_lp_reference(&next, &[]));
        }
    }

    #[test]
    fn presolve_round_trips_on_random_sparse_lps(lp in sparse_lp(6, 4)) {
        let m = build(&lp, &[], 0, &[]);
        let direct = solve_lp(&m, &[]);
        match presolve_lp(&m) {
            // Presolve may prove infeasibility on its own; the direct
            // solve must agree.
            Err(e) => assert_agree(&Err(e), &direct),
            Ok(pre) => {
                let round_trip =
                    solve_lp(pre.reduced(), &[]).map(|s| pre.postsolve(&m, &s));
                assert_agree(&round_trip, &direct);
                assert_agree(&round_trip, &solve_lp_reference(&m, &[]));
            }
        }
    }

    #[test]
    fn presolve_round_trips_on_branch_fixed_placements(
        spec in placement_spec(4),
        fixings in proptest::collection::vec(0..=2u32, 4),
    ) {
        // Bake branch-style decisions in as singleton equality rows —
        // exactly the rows presolve folds into fixed variables — fixing
        // app k at site (fixings[k] % SITES) for even k.
        let (mut m, binaries) = build_placement(&spec);
        for (k, &site) in fixings.iter().enumerate() {
            if k % 2 != 0 {
                continue;
            }
            for s in 0..SITES {
                let v = binaries[k * SITES + s];
                let fix = if s == site as usize { 1.0 } else { 0.0 };
                let e = m.expr(&[(v, 1.0)]);
                m.add_eq(e, fix);
            }
        }
        let direct = solve_lp(&m, &[]);
        match presolve_lp(&m) {
            Err(e) => assert_agree(&Err(e), &direct),
            Ok(pre) => {
                // The singleton rows must actually have been eliminated.
                prop_assert!(pre.num_fixed() >= 2 * SITES);
                let round_trip =
                    solve_lp(pre.reduced(), &[]).map(|s| pre.postsolve(&m, &s));
                assert_agree(&round_trip, &direct);
                assert_agree(&round_trip, &solve_lp_reference(&m, &[]));
            }
        }
    }
}
