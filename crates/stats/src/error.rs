//! Forecast-error metrics.
//!
//! Figure 5 of the paper quantifies ELIA's power forecasts with the mean
//! absolute percentage error (MAPE): 8.5–9 % for 3-hour-ahead, 18–25 % for
//! day-ahead and 44 %/75 % (solar/wind) for week-ahead horizons. The
//! forecast simulator in `vb-trace` is calibrated against [`mape`], and
//! [`mae`]/[`rmse`] are provided for completeness.

use crate::series::TimeSeries;

/// Mean absolute percentage error, in percent.
///
/// Samples where the actual value is (near) zero are skipped, the usual
/// convention for renewable forecasts — night-time solar would otherwise
/// make MAPE undefined. Returns 0 when no sample is usable.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mape(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &f) in actual.iter().zip(forecast) {
        if a.abs() > 1e-9 {
            sum += ((a - f) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Mean absolute error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mae(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    assert!(!actual.is_empty(), "mae of empty slices");
    actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Root mean squared error.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn rmse(actual: &[f64], forecast: &[f64]) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    assert!(!actual.is_empty(), "rmse of empty slices");
    let mse = actual
        .iter()
        .zip(forecast)
        .map(|(a, f)| (a - f).powi(2))
        .sum::<f64>()
        / actual.len() as f64;
    mse.sqrt()
}

/// MAPE restricted to samples whose actual value is at least
/// `min_actual`.
///
/// Renewable-forecast accuracy is conventionally reported over periods
/// of meaningful production: with normalized power, a dawn sample of
/// 0.5 % of capacity mis-forecast by one percentage point would count as
/// a 200 % error and dominate the average. ELIA's published accuracy
/// (which Figure 5 of the paper quotes) filters such samples; we use
/// `min_actual = 0.02` (2 % of capacity) throughout the reproduction.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mape_above(actual: &[f64], forecast: &[f64], min_actual: f64) -> f64 {
    assert_eq!(actual.len(), forecast.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&a, &f) in actual.iter().zip(forecast) {
        if a >= min_actual && a.abs() > 1e-9 {
            sum += ((a - f) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// MAPE between two aligned time series (see [`mape`]).
///
/// # Panics
/// Panics if the series have different lengths or intervals.
pub fn mape_series(actual: &TimeSeries, forecast: &TimeSeries) -> f64 {
    assert_eq!(
        actual.interval_secs, forecast.interval_secs,
        "interval mismatch"
    );
    mape(&actual.values, &forecast.values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_has_zero_error() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(mape(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn mape_of_known_errors() {
        // errors of 10% and 20% -> MAPE 15%.
        let a = [100.0, 100.0];
        let f = [110.0, 80.0];
        assert!((mape(&a, &f) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        // The zero-actual sample (with a wild forecast) must not blow up
        // the metric.
        let a = [0.0, 100.0];
        let f = [50.0, 90.0];
        assert!((mape(&a, &f) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mape_of_all_zero_actuals_is_zero() {
        assert_eq!(mape(&[0.0, 0.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    fn mape_above_filters_small_actuals() {
        let a = [0.01, 0.5];
        let f = [0.05, 0.55];
        // Unfiltered: (400% + 10%) / 2 = 205%. Filtered: 10%.
        assert!((mape(&a, &f) - 205.0).abs() < 1e-9);
        assert!((mape_above(&a, &f, 0.02) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mape_above_with_no_qualifying_samples_is_zero() {
        assert_eq!(mape_above(&[0.001], &[0.5], 0.02), 0.0);
    }

    #[test]
    fn mae_and_rmse_of_known_errors() {
        let a = [0.0, 0.0];
        let f = [3.0, -4.0];
        assert!((mae(&a, &f) - 3.5).abs() < 1e-12);
        assert!((rmse(&a, &f) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_upper_bounds_mae() {
        let a = [1.0, 5.0, 9.0, 2.0];
        let f = [2.0, 3.0, 10.0, 0.0];
        assert!(rmse(&a, &f) >= mae(&a, &f));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mape(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn series_wrapper_matches_slice_version() {
        let a = TimeSeries::new(900, vec![100.0, 200.0]);
        let f = TimeSeries::new(900, vec![90.0, 220.0]);
        assert_eq!(mape_series(&a, &f), mape(&a.values, &f.values));
    }
}
