//! Plain-text tables and a minimal JSON emitter for experiment output.
//!
//! The bench harness regenerates the paper's tables and figure series as
//! text. A tiny hand-rolled emitter keeps the workspace inside the
//! approved dependency set (no `serde_json`): experiment results are
//! simple trees of numbers and strings, which [`Json`] covers.

use std::fmt::Write as _;

/// A minimal JSON value for experiment reports.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (non-finite values serialize as `null`).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Json>),
    /// JSON object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for number arrays.
    pub fn nums(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a trailing ".0" to stay
                    // close to what a human would write in a table.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like most emitters.
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    /// Serialize to a compact JSON string.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// A fixed-width plain-text table, in the style of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (shorter rows are padded with blanks).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Append a row of display-formatted cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Strip trailing padding for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Format a byte-count-like quantity in GB with thousands separators, the
/// way Table 1 prints "306,966".
pub fn thousands(v: f64) -> String {
    let neg = v < 0.0;
    let mut n = v.abs().round() as u64;
    if n == 0 {
        return if neg { "-0".into() } else { "0".into() };
    }
    let mut groups = Vec::new();
    while n > 0 {
        groups.push((n % 1000) as u16);
        n /= 1000;
    }
    let mut out = String::new();
    if neg {
        out.push('-');
    }
    for (i, g) in groups.iter().rev().enumerate() {
        if i == 0 {
            let _ = write!(out, "{g}");
        } else {
            let _ = write!(out, ",{g:03}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_scalars_serialize() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
    }

    #[test]
    fn json_composites_serialize() {
        let j = Json::obj(vec![
            ("name", Json::Str("solar".into())),
            ("values", Json::nums(&[1.0, 2.5])),
        ]);
        assert_eq!(j.to_string(), r#"{"name":"solar","values":[1,2.5]}"#);
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(
            Json::Str("a\nb\t\u{1}".into()).to_string(),
            "\"a\\nb\\t\\u0001\""
        );
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(&["Policy", "Total"]);
        t.row(&["Greedy".into(), "306,966".into()]);
        t.row(&["MIP".into(), "209,961".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Policy"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("Greedy"));
        // Column alignment: "Total" column starts at the same offset.
        assert_eq!(lines[2].find("306,966"), lines[3].find("209,961"));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["x".into()]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn thousands_groups_digits() {
        assert_eq!(thousands(0.0), "0");
        assert_eq!(thousands(999.0), "999");
        assert_eq!(thousands(1_000.0), "1,000");
        assert_eq!(thousands(306_966.0), "306,966");
        assert_eq!(thousands(1_234_567.4), "1,234,567");
        assert_eq!(thousands(-2_500.0), "-2,500");
    }
}
