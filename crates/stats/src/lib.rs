#![warn(missing_docs)]

//! # vb-stats — time-series and statistics kernel
//!
//! Foundation crate for the Virtual Battery workspace. Every other crate
//! manipulates power and traffic signals through the [`TimeSeries`]
//! container and summarises them with the statistics in [`summary`],
//! [`cdf`] and [`error`].
//!
//! The paper's evaluation is built almost entirely out of a handful of
//! statistical primitives:
//!
//! * **Coefficient of variation** (`cov = std / mean`) — the metric used in
//!   §2.3 to rank site combinations ("combining NO solar with UK wind
//!   reduces cov by 3.7×").
//! * **Empirical CDFs** — Figures 2b, 4b and 7 are all CDFs of power or
//!   migration volume.
//! * **Percentile ratios** — the paper reports tail/median ratios such as
//!   "99th divided by 50th percentile values as high as 18–30×".
//! * **MAPE** — forecast quality in Figure 5.
//! * **Windowed minima** — the stable/variable energy decomposition of
//!   §2.3 ("minimum power level in the window multiplied by the size of a
//!   window").
//!
//! All of those live here so the higher layers can share one tested
//! implementation.

pub mod cdf;
pub mod error;
pub mod hist;
pub mod report;
pub mod series;
pub mod summary;

pub use cdf::Cdf;
pub use error::{mae, mape, mape_above, rmse};
pub use hist::{autocorrelation, Histogram};
pub use series::TimeSeries;
pub use summary::{coefficient_of_variation, mean, percentile, std_dev, Summary};
