//! Fixed-interval time series.
//!
//! Power traces (§2.2), forecasts (Fig 5) and migration-traffic signals
//! (Fig 4) are all sampled at a fixed interval — 15 minutes in the ELIA
//! dataset the paper uses. [`TimeSeries`] stores such a signal as a start
//! offset, an interval, and a dense `Vec<f64>`, and provides the windowed
//! and element-wise operations the evaluation needs.

use serde::{Deserialize, Serialize};

/// Seconds in one hour; used when converting power (MW) to energy (MWh).
pub const SECS_PER_HOUR: u64 = 3_600;

/// A signal sampled at a fixed interval.
///
/// Sample `i` covers the half-open wall-clock span
/// `[start_secs + i*interval_secs, start_secs + (i+1)*interval_secs)`.
/// For power traces the value is the average power (MW, or normalized to
/// peak capacity) over that span, which makes energy integration exact:
/// `energy = value * interval`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Offset of sample 0 from the trace epoch, in seconds.
    pub start_secs: u64,
    /// Sampling interval in seconds (e.g. 900 for 15-minute data).
    pub interval_secs: u64,
    /// The samples.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// Create a series starting at the epoch.
    ///
    /// # Panics
    /// Panics if `interval_secs` is zero.
    pub fn new(interval_secs: u64, values: Vec<f64>) -> Self {
        Self::with_start(0, interval_secs, values)
    }

    /// Create a series with an explicit start offset.
    ///
    /// # Panics
    /// Panics if `interval_secs` is zero.
    pub fn with_start(start_secs: u64, interval_secs: u64, values: Vec<f64>) -> Self {
        assert!(interval_secs > 0, "interval must be positive");
        Self {
            start_secs,
            interval_secs,
            values,
        }
    }

    /// A series of `n` zeros.
    pub fn zeros(interval_secs: u64, n: usize) -> Self {
        Self::new(interval_secs, vec![0.0; n])
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Wall-clock start (seconds) of sample `i`.
    pub fn time_of(&self, i: usize) -> u64 {
        self.start_secs + i as u64 * self.interval_secs
    }

    /// Duration covered by the whole series, in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.len() as u64 * self.interval_secs
    }

    /// Samples per hour. Fractional when the interval exceeds an hour.
    pub fn samples_per_hour(&self) -> f64 {
        // vb-audit: allow(div-guard, interval_secs > 0 is enforced by every constructor)
        SECS_PER_HOUR as f64 / self.interval_secs as f64
    }

    /// Index of the sample covering wall-clock second `t`, if in range.
    pub fn index_at(&self, t: u64) -> Option<usize> {
        if t < self.start_secs {
            return None;
        }
        // vb-audit: allow(div-guard, interval_secs > 0 is enforced by every constructor)
        let i = ((t - self.start_secs) / self.interval_secs) as usize;
        (i < self.len()).then_some(i)
    }

    /// Sub-series covering samples `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `hi > len`.
    pub fn slice(&self, lo: usize, hi: usize) -> TimeSeries {
        TimeSeries {
            start_secs: self.time_of(lo),
            interval_secs: self.interval_secs,
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Element-wise sum of two aligned series.
    ///
    /// # Panics
    /// Panics if the intervals differ or the lengths differ.
    pub fn add(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(self.interval_secs, other.interval_secs, "interval mismatch");
        assert_eq!(self.len(), other.len(), "length mismatch");
        TimeSeries {
            start_secs: self.start_secs,
            interval_secs: self.interval_secs,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Multiply every sample by `k` (e.g. normalized power → MW).
    pub fn scale(&self, k: f64) -> TimeSeries {
        self.map(|v| v * k)
    }

    /// Apply `f` to every sample.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries {
            start_secs: self.start_secs,
            interval_secs: self.interval_secs,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Sum all samples of several aligned series.
    ///
    /// # Panics
    /// Panics if `series` is empty or the series are misaligned.
    pub fn sum_of(series: &[&TimeSeries]) -> TimeSeries {
        assert!(!series.is_empty(), "need at least one series");
        let mut acc = series[0].clone();
        for s in &series[1..] {
            acc = acc.add(s);
        }
        acc
    }

    /// Minimum sample value; `None` for an empty series.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum sample value; `None` for an empty series.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Integrate power over time: `sum(value_i) * interval` in
    /// value-hours (MWh when samples are MW).
    pub fn energy(&self) -> f64 {
        // vb-audit: allow(div-guard, SECS_PER_HOUR is a nonzero constant)
        let hours = self.interval_secs as f64 / SECS_PER_HOUR as f64;
        self.values.iter().sum::<f64>() * hours
    }

    /// Downsample by averaging consecutive groups of `factor` samples.
    /// A trailing partial group is averaged over its actual size.
    ///
    /// # Panics
    /// Panics if `factor` is zero.
    pub fn downsample(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "factor must be positive");
        let values = self
            .values
            .chunks(factor)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        TimeSeries {
            start_secs: self.start_secs,
            interval_secs: self.interval_secs * factor as u64,
            values,
        }
    }

    /// Upsample by repeating each sample `factor` times (zero-order hold).
    ///
    /// # Panics
    /// Panics if `factor` is zero or does not divide the interval.
    pub fn upsample(&self, factor: usize) -> TimeSeries {
        assert!(factor > 0, "factor must be positive");
        assert_eq!(
            self.interval_secs % factor as u64,
            0,
            "factor must divide the interval"
        );
        let mut values = Vec::with_capacity(self.len() * factor);
        for &v in &self.values {
            values.extend(std::iter::repeat_n(v, factor));
        }
        TimeSeries {
            start_secs: self.start_secs,
            interval_secs: self.interval_secs / factor as u64,
            values,
        }
    }

    /// Minimum over each non-overlapping window of `window` samples.
    ///
    /// This is the primitive behind the paper's stable-energy definition
    /// (§2.3): within a window, `window_min * window_duration` of energy
    /// is guaranteed. A trailing partial window produces its own minimum;
    /// note the returned series' fixed interval over-weights such a
    /// partial window in [`TimeSeries::energy`] — energy-accurate
    /// decomposition lives in `vb_core::energy::decompose`, which weights
    /// chunks by their true lengths.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn window_min(&self, window: usize) -> TimeSeries {
        assert!(window > 0, "window must be positive");
        let values = self
            .values
            .chunks(window)
            .map(|c| c.iter().copied().fold(f64::INFINITY, f64::min))
            .collect();
        TimeSeries {
            start_secs: self.start_secs,
            interval_secs: self.interval_secs * window as u64,
            values,
        }
    }

    /// Per-sample deltas: `values[i] - values[i-1]`, length `len - 1`.
    pub fn diff(&self) -> Vec<f64> {
        self.values.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Clamp every sample into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> TimeSeries {
        self.map(|v| v.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(900, vals.to_vec())
    }

    #[test]
    fn time_of_uses_start_and_interval() {
        let s = TimeSeries::with_start(100, 900, vec![0.0; 4]);
        assert_eq!(s.time_of(0), 100);
        assert_eq!(s.time_of(3), 100 + 3 * 900);
        assert_eq!(s.duration_secs(), 3_600);
    }

    #[test]
    fn index_at_maps_times_to_samples() {
        let s = TimeSeries::with_start(900, 900, vec![0.0; 3]);
        assert_eq!(s.index_at(0), None, "before the start");
        assert_eq!(s.index_at(900), Some(0));
        assert_eq!(s.index_at(1_799), Some(0), "inside first span");
        assert_eq!(s.index_at(1_800), Some(1));
        assert_eq!(s.index_at(900 + 3 * 900), None, "past the end");
    }

    #[test]
    fn add_and_scale_are_elementwise() {
        let a = ts(&[1.0, 2.0, 3.0]);
        let b = ts(&[10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).values, vec![11.0, 22.0, 33.0]);
        assert_eq!(a.scale(2.0).values, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_rejects_mismatched_lengths() {
        ts(&[1.0]).add(&ts(&[1.0, 2.0]));
    }

    #[test]
    fn energy_integrates_power() {
        // 4 samples of 15 min at 100 MW = 1 hour at 100 MW = 100 MWh.
        let s = ts(&[100.0, 100.0, 100.0, 100.0]);
        assert!((s.energy() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_averages_groups() {
        let s = ts(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        let d = s.downsample(2);
        assert_eq!(d.values, vec![2.0, 6.0, 9.0]);
        assert_eq!(d.interval_secs, 1_800);
    }

    #[test]
    fn upsample_repeats_samples() {
        let s = ts(&[1.0, 2.0]);
        let u = s.upsample(3);
        assert_eq!(u.values, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        assert_eq!(u.interval_secs, 300);
    }

    #[test]
    fn downsample_then_energy_is_preserved_for_full_groups() {
        let s = ts(&[2.0, 4.0, 6.0, 8.0]);
        assert!((s.energy() - s.downsample(2).energy()).abs() < 1e-9);
    }

    #[test]
    fn window_min_takes_chunk_minima() {
        let s = ts(&[5.0, 1.0, 4.0, 2.0, 9.0]);
        let m = s.window_min(2);
        assert_eq!(m.values, vec![1.0, 2.0, 9.0]);
        assert_eq!(m.interval_secs, 1_800);
    }

    #[test]
    fn window_min_energy_never_exceeds_total_energy() {
        let s = ts(&[5.0, 1.0, 4.0, 2.0]);
        assert!(s.window_min(2).energy() <= s.energy() + 1e-12);
    }

    #[test]
    fn slice_retains_wall_clock_alignment() {
        let s = TimeSeries::with_start(0, 900, vec![0.0, 1.0, 2.0, 3.0]);
        let w = s.slice(2, 4);
        assert_eq!(w.start_secs, 1_800);
        assert_eq!(w.values, vec![2.0, 3.0]);
    }

    #[test]
    fn diff_produces_len_minus_one_deltas() {
        let s = ts(&[1.0, 4.0, 2.0]);
        assert_eq!(s.diff(), vec![3.0, -2.0]);
        assert!(ts(&[1.0]).diff().is_empty());
    }

    #[test]
    fn sum_of_accumulates_all_series() {
        let a = ts(&[1.0, 1.0]);
        let b = ts(&[2.0, 2.0]);
        let c = ts(&[3.0, 3.0]);
        assert_eq!(TimeSeries::sum_of(&[&a, &b, &c]).values, vec![6.0, 6.0]);
    }

    #[test]
    fn min_max_and_clamp() {
        let s = ts(&[-1.0, 0.5, 2.0]);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(2.0));
        assert_eq!(s.clamp(0.0, 1.0).values, vec![0.0, 0.5, 1.0]);
        assert_eq!(TimeSeries::new(1, vec![]).min(), None);
    }
}
