//! Empirical cumulative distribution functions.
//!
//! Figures 2b, 4b and 7 of the paper are CDFs. Figure 4b additionally
//! "only includes non-zero overhead values", and Figure 7's discussion
//! quotes the *fraction of zero values* per policy (74 % / 81 % / 94 %),
//! so the type tracks how many samples were dropped by a zero filter.

use crate::summary::percentile_of_sorted;
use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Samples in ascending order.
    sorted: Vec<f64>,
    /// Number of samples excluded by [`Cdf::of_nonzero`].
    excluded_zeros: usize,
}

impl Cdf {
    /// Build a CDF from all samples. NaN samples sort after every finite
    /// value (`total_cmp` order).
    pub fn of(values: &[f64]) -> Cdf {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Cdf {
            sorted,
            excluded_zeros: 0,
        }
    }

    /// Build a CDF of the strictly positive samples only, remembering how
    /// many zero (or negative) samples were excluded — the Figure 4b/7
    /// convention.
    pub fn of_nonzero(values: &[f64]) -> Cdf {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let excluded_zeros = values.len() - sorted.len();
        Cdf {
            sorted,
            excluded_zeros,
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Samples excluded by the non-zero filter.
    pub fn excluded_zeros(&self) -> usize {
        self.excluded_zeros
    }

    /// Fraction of the *original* sample that was zero/negative
    /// (the "94 % zero values in MIP" statistic of §3.1).
    pub fn zero_fraction(&self) -> f64 {
        let total = self.sorted.len() + self.excluded_zeros;
        if total == 0 {
            0.0
        } else {
            self.excluded_zeros as f64 / total as f64
        }
    }

    /// `P(X <= x)` over the retained samples.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile `q` in `[0, 1]` of the retained samples.
    ///
    /// # Panics
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        percentile_of_sorted(&self.sorted, q * 100.0)
    }

    /// The retained samples in ascending order.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// `(x, P(X <= x))` plot points, decimated to at most `max_points`
    /// evenly spaced quantiles — enough to redraw the paper's figures.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len().min(max_points);
        (0..n)
            .map(|i| {
                let idx = if n == 1 {
                    self.sorted.len() - 1
                } else {
                    i * (self.sorted.len() - 1) / (n - 1)
                };
                (
                    self.sorted[idx],
                    (idx + 1) as f64 / self.sorted.len() as f64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_counts_fraction_at_or_below() {
        let c = Cdf::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(99.0), 1.0);
    }

    #[test]
    fn eval_of_empty_is_zero() {
        assert_eq!(Cdf::of(&[]).eval(1.0), 0.0);
    }

    #[test]
    fn quantile_is_inverse_of_eval_on_grid() {
        let c = Cdf::of(&[10.0, 20.0, 30.0]);
        assert_eq!(c.quantile(0.0), 10.0);
        assert_eq!(c.quantile(0.5), 20.0);
        assert_eq!(c.quantile(1.0), 30.0);
    }

    #[test]
    fn nonzero_filter_tracks_exclusions() {
        let c = Cdf::of_nonzero(&[0.0, 0.0, 5.0, 0.0, 7.0]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.excluded_zeros(), 3);
        assert!((c.zero_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_fraction_of_empty_input_is_zero() {
        assert_eq!(Cdf::of_nonzero(&[]).zero_fraction(), 0.0);
    }

    #[test]
    fn points_are_monotonic() {
        let vals: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let pts = Cdf::of(&vals).points(10);
        assert_eq!(pts.len(), 10);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn points_handles_tiny_inputs() {
        assert!(Cdf::of(&[]).points(5).is_empty());
        let single = Cdf::of(&[3.0]).points(5);
        assert_eq!(single, vec![(3.0, 1.0)]);
    }
}
