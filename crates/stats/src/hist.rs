//! Histograms, including the log-spaced variant used for migration-burst
//! distributions (Fig 4b/7 span 10¹–10⁵ GB, so linear bins are useless).

use serde::{Deserialize, Serialize};

/// A fixed-bin histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin edges, ascending; bin `i` covers `[edges[i], edges[i+1])`.
    edges: Vec<f64>,
    counts: Vec<u64>,
    /// Samples below the first edge.
    underflow: u64,
    /// Samples at or above the last edge.
    overflow: u64,
}

impl Histogram {
    /// Linear bins covering `[lo, hi)` in `n` equal steps.
    ///
    /// # Panics
    /// Panics if `n == 0` or `lo >= hi`.
    pub fn linear(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(n > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        let step = (hi - lo) / n as f64;
        let edges = (0..=n).map(|i| lo + step * i as f64).collect();
        Histogram::from_edges(edges)
    }

    /// Log-spaced bins covering `[lo, hi)` with `n` bins per decade
    /// resolution (edges at equal ratios).
    ///
    /// # Panics
    /// Panics if `lo <= 0`, `lo >= hi`, or `n == 0`.
    pub fn log(lo: f64, hi: f64, n: usize) -> Histogram {
        assert!(lo > 0.0, "log bins need a positive lower edge");
        assert!(lo < hi, "lo must be below hi");
        assert!(n > 0, "need at least one bin");
        let ratio = (hi / lo).powf(1.0 / n as f64);
        let edges = (0..=n).map(|i| lo * ratio.powi(i as i32)).collect();
        Histogram::from_edges(edges)
    }

    fn from_edges(edges: Vec<f64>) -> Histogram {
        let bins = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if v < self.edges[0] {
            self.underflow += 1;
            return;
        }
        if v >= *self.edges.last().expect("edges non-empty") {
            self.overflow += 1;
            return;
        }
        // Binary search for the containing bin.
        let i = self.edges.partition_point(|&e| e <= v) - 1;
        self.counts[i] += 1;
    }

    /// Record many samples.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Total recorded samples (including under/overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples that fell below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at/above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(bin_lo, bin_hi, count)` rows.
    pub fn rows(&self) -> Vec<(f64, f64, u64)> {
        self.edges
            .windows(2)
            .zip(&self.counts)
            .map(|(e, &c)| (e[0], e[1], c))
            .collect()
    }

    /// The mode bin's `(lo, hi)` range, or `None` when empty.
    pub fn mode_bin(&self) -> Option<(f64, f64)> {
        let (i, &c) = self.counts.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        (c > 0).then(|| (self.edges[i], self.edges[i + 1]))
    }
}

/// Lag-`k` autocorrelation of a series (Pearson correlation between the
/// series and itself shifted by `k`). Returns 0 for degenerate inputs.
pub fn autocorrelation(values: &[f64], lag: usize) -> f64 {
    if lag == 0 {
        return 1.0;
    }
    if values.len() <= lag + 1 {
        return 0.0;
    }
    let a = &values[..values.len() - lag];
    let b = &values[lag..];
    let ma = crate::summary::mean(a);
    let mb = crate::summary::mean(b);
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
    let da: f64 = a.iter().map(|x| (x - ma).powi(2)).sum::<f64>().sqrt();
    let db: f64 = b.iter().map(|y| (y - mb).powi(2)).sum::<f64>().sqrt();
    if da < 1e-12 || db < 1e-12 {
        0.0
    } else {
        num / (da * db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_bins_partition_the_range() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        h.record_all(&[0.0, 1.9, 2.0, 9.9, 10.0, -1.0]);
        assert_eq!(h.bins(), 5);
        let rows = h.rows();
        assert_eq!(rows[0].2, 2, "0.0 and 1.9");
        assert_eq!(rows[1].2, 1, "2.0");
        assert_eq!(rows[4].2, 1, "9.9");
        assert_eq!(h.overflow(), 1, "10.0 is outside [0,10)");
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn log_bins_have_equal_ratios() {
        let h = Histogram::log(1.0, 10_000.0, 4);
        let rows = h.rows();
        for (lo, hi, _) in rows {
            assert!((hi / lo - 10.0).abs() < 1e-9, "decade bins");
        }
    }

    #[test]
    fn log_histogram_spreads_bursty_data() {
        let mut h = Histogram::log(1.0, 100_000.0, 10);
        let data: Vec<f64> = (0..100).map(|i| 10f64.powf(i as f64 / 20.0)).collect();
        h.record_all(&data);
        assert_eq!(h.total(), 100);
        let nonempty = h.rows().iter().filter(|r| r.2 > 0).count();
        assert!(nonempty >= 9, "log data covers log bins");
    }

    #[test]
    fn mode_bin_finds_the_peak() {
        let mut h = Histogram::linear(0.0, 3.0, 3);
        h.record_all(&[0.5, 1.5, 1.6, 1.7, 2.5]);
        assert_eq!(h.mode_bin(), Some((1.0, 2.0)));
        assert_eq!(Histogram::linear(0.0, 1.0, 2).mode_bin(), None);
    }

    #[test]
    #[should_panic(expected = "log bins need a positive lower edge")]
    fn log_rejects_zero_lower_edge() {
        Histogram::log(0.0, 10.0, 2);
    }

    #[test]
    fn autocorrelation_of_known_signals() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 0), 1.0);
        // Alternating signal: lag-1 autocorr = -1.
        let alt = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!((autocorrelation(&alt, 1) + 1.0).abs() < 1e-9);
        assert!((autocorrelation(&alt, 2) - 1.0).abs() < 1e-9);
        // Constant signal: undefined -> 0.
        assert_eq!(autocorrelation(&[3.0; 10], 1), 0.0);
        // Too short -> 0.
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
    }
}
