//! Scalar summaries: mean, standard deviation, percentiles and the
//! coefficient of variation the paper uses to rank site combinations.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Coefficient of variation, `std / mean` — the §2.3 comparison metric.
///
/// Returns `f64::INFINITY` when the mean is zero but the data varies, and
/// 0 for constant-zero data, so that "no energy at all" is not mistaken
/// for "perfectly stable energy".
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let m = mean(values);
    let s = std_dev(values);
    if m.abs() < f64::EPSILON {
        if s.abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        s / m
    }
}

/// Percentile `p` in `[0, 100]` with linear interpolation between order
/// statistics (the same convention as numpy's default). NaN samples sort
/// after every finite value (`total_cmp` order), so they only influence
/// the top percentiles instead of aborting the run.
///
/// # Panics
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_of_sorted(&sorted, p)
}

/// Percentile on an already-sorted slice (ascending order).
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// One-shot descriptive summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Coefficient of variation (std / mean).
    pub cov: f64,
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
    /// Sum of all samples.
    pub total: f64,
}

impl Summary {
    /// Summarise a slice of samples.
    ///
    /// # Panics
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "summary of empty slice");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Summary {
            count: values.len(),
            mean: mean(values),
            std: std_dev(values),
            cov: coefficient_of_variation(values),
            min: sorted[0],
            p25: percentile_of_sorted(&sorted, 25.0),
            p50: percentile_of_sorted(&sorted, 50.0),
            p75: percentile_of_sorted(&sorted, 75.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
            total: values.iter().sum(),
        }
    }

    /// Summarise a time series' samples.
    ///
    /// # Panics
    /// Panics if the series is empty.
    pub fn of_series(series: &TimeSeries) -> Summary {
        Summary::of(&series.values)
    }

    /// Tail-to-upper-quartile ratio (p99 / p75), the "high tail" metric of
    /// §2.2 ("99th divided by 75th percentile ratios of 4× for solar").
    /// Returns `f64::INFINITY` when p75 is zero but p99 is not.
    pub fn tail_ratio(&self) -> f64 {
        ratio(self.p99, self.p75)
    }

    /// Tail-to-median ratio (p99 / p50), used in §3's migration analysis.
    pub fn p99_over_p50(&self) -> f64 {
        ratio(self.p99, self.p50)
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den.abs() < f64::EPSILON {
        if num.abs() < f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn cov_is_std_over_mean() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((coefficient_of_variation(&v) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cov_of_constant_zero_is_zero_not_nan() {
        assert_eq!(coefficient_of_variation(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn cov_of_zero_mean_variation_is_infinite() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]), f64::INFINITY);
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        // rank = 0.25 * 3 = 0.75 -> 10 + 0.75*10 = 17.5
        assert!((percentile(&v, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let v = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&v, 50.0), 25.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_of_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_out_of_range_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn nan_adjacent_readouts_sort_last_not_panic() {
        // Regression for the total_cmp sweep: a NaN readout must not
        // abort summarisation, and must land *after* every finite value
        // (total_cmp order), pinning min/median to the finite samples.
        let v = [3.0, f64::NAN, 1.0, 2.0];
        let s = Summary::of(&v);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 2.5);
        assert!(s.max.is_nan(), "NaN sorts greatest");
        assert_eq!(percentile(&v, 0.0), 1.0);
        // Negative NaN sorts *before* -inf in total_cmp order.
        let neg_nan = -f64::NAN;
        let s = Summary::of(&[0.0, neg_nan, f64::NEG_INFINITY]);
        assert!(s.min.is_nan());
        assert_eq!(s.p50, f64::NEG_INFINITY);
    }

    #[test]
    fn summary_matches_direct_computations() {
        let v = [1.0, 2.0, 3.0, 4.0, 100.0];
        let s = Summary::of(&v);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.total, 110.0);
        assert!((s.mean - 22.0).abs() < 1e-12);
    }

    #[test]
    fn tail_ratios_handle_zero_denominators() {
        let zeros = Summary::of(&[0.0, 0.0, 0.0]);
        assert_eq!(zeros.tail_ratio(), 0.0);
        let spike = Summary::of(&[0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 10.0]);
        assert_eq!(spike.p99_over_p50(), f64::INFINITY);
    }
}
