//! Property tests for the statistics kernel.

use proptest::prelude::*;
use vb_stats::{
    autocorrelation, coefficient_of_variation, mae, mape, mean, percentile, rmse, std_dev, Cdf,
    Histogram, Summary, TimeSeries,
};

fn samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e3..1e3f64, 1..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mean_is_translation_equivariant(v in samples(), shift in -100.0..100.0f64) {
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - (mean(&v) + shift)).abs() < 1e-6);
    }

    #[test]
    fn std_is_translation_invariant_and_scale_equivariant(
        v in samples(),
        shift in -100.0..100.0f64,
        k in 0.0..10.0f64,
    ) {
        let shifted: Vec<f64> = v.iter().map(|x| x + shift).collect();
        prop_assert!((std_dev(&shifted) - std_dev(&v)).abs() < 1e-6);
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        prop_assert!((std_dev(&scaled) - std_dev(&v) * k).abs() < 1e-5);
    }

    #[test]
    fn cov_is_scale_invariant_for_positive_data(
        v in proptest::collection::vec(0.1..1e3f64, 2..200),
        k in 0.1..50.0f64,
    ) {
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        let a = coefficient_of_variation(&v);
        let b = coefficient_of_variation(&scaled);
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
    }

    #[test]
    fn percentiles_are_monotone_in_p(v in samples()) {
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let x = percentile(&v, p);
            prop_assert!(x >= prev - 1e-9);
            prev = x;
        }
    }

    #[test]
    fn percentile_brackets_match_min_max(v in samples()) {
        let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((percentile(&v, 0.0) - lo).abs() < 1e-12);
        prop_assert!((percentile(&v, 100.0) - hi).abs() < 1e-12);
    }

    #[test]
    fn summary_total_is_the_sum(v in samples()) {
        let s = Summary::of(&v);
        let total: f64 = v.iter().sum();
        prop_assert!((s.total - total).abs() < 1e-6 * (1.0 + total.abs()));
        prop_assert_eq!(s.count, v.len());
    }

    #[test]
    fn cdf_eval_is_monotone_nondecreasing(v in samples(), probes in proptest::collection::vec(-1e3..1e3f64, 2..20)) {
        let cdf = Cdf::of(&v);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted_probes {
            let p = cdf.eval(x);
            prop_assert!(p >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
    }

    #[test]
    fn nonzero_cdf_partitions_the_sample(v in proptest::collection::vec(-10.0..10.0f64, 0..200)) {
        let cdf = Cdf::of_nonzero(&v);
        let positives = v.iter().filter(|&&x| x > 0.0).count();
        prop_assert_eq!(cdf.len(), positives);
        prop_assert_eq!(cdf.len() + cdf.excluded_zeros(), v.len());
    }

    #[test]
    fn error_metrics_are_nonnegative_and_zero_on_self(v in samples()) {
        prop_assert_eq!(mape(&v, &v), 0.0);
        prop_assert_eq!(mae(&v, &v), 0.0);
        prop_assert_eq!(rmse(&v, &v), 0.0);
        let noisy: Vec<f64> = v.iter().map(|x| x + 1.0).collect();
        prop_assert!(mae(&v, &noisy) >= 0.0);
        prop_assert!(rmse(&v, &noisy) >= mae(&v, &noisy) - 1e-9);
    }

    #[test]
    fn histogram_conserves_samples(v in samples()) {
        let mut h = Histogram::linear(-1e3, 1e3, 20);
        h.record_all(&v);
        prop_assert_eq!(h.total(), v.len() as u64);
        let binned: u64 = h.rows().iter().map(|r| r.2).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), v.len() as u64);
    }

    #[test]
    fn autocorrelation_is_bounded(v in samples(), lag in 1usize..10) {
        let r = autocorrelation(&v, lag);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
    }

    #[test]
    fn series_add_commutes(a in samples(), _k in 0..1) {
        let ts_a = TimeSeries::new(900, a.clone());
        let b: Vec<f64> = a.iter().map(|x| x * 2.0 + 1.0).collect();
        let ts_b = TimeSeries::new(900, b);
        let ab = ts_a.add(&ts_b);
        let ba = ts_b.add(&ts_a);
        prop_assert_eq!(ab.values, ba.values);
    }

    #[test]
    fn slice_concatenation_reconstructs(v in proptest::collection::vec(-5.0..5.0f64, 2..100), cut_at in 1usize..99) {
        let ts = TimeSeries::new(900, v.clone());
        let cut = cut_at.min(ts.len() - 1).max(1);
        let left = ts.slice(0, cut);
        let right = ts.slice(cut, ts.len());
        let mut rebuilt = left.values.clone();
        rebuilt.extend(&right.values);
        prop_assert_eq!(rebuilt, v);
        prop_assert_eq!(right.start_secs, cut as u64 * 900);
    }
}
