//! Synthetic Azure-like VM arrival workload.
//!
//! The paper replays a proprietary "Azure production VM arrival trace".
//! We substitute a generator matched to the published statistics of that
//! trace family (the Azure Public Dataset and the Protean paper):
//!
//! * **Shapes** — a discrete core-size mix dominated by small VMs
//!   (1–4 cores) with a tail up to 32 cores; memory is a few GB per core.
//! * **Lifetimes** — heavy-tailed: most VMs live under an hour, a
//!   minority for days (log-normal).
//! * **Rate** — Poisson arrivals whose rate is derived from the target
//!   steady-state utilization via Little's law, so a fresh cluster
//!   settles near the 70 % utilization the paper simulates at.

use crate::vm::{VmKind, VmRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Discrete VM shape mix: (cores, memory GB per core, probability).
/// Small VMs dominate, as in the Azure trace.
const SHAPES: &[(u32, f64, f64)] = &[
    (1, 4.0, 0.38),
    (2, 4.0, 0.25),
    (4, 4.0, 0.18),
    (8, 4.0, 0.10),
    (16, 4.0, 0.05),
    (24, 5.33, 0.025),
    (32, 4.0, 0.015),
];

/// Workload generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean arrivals per 15-minute step.
    pub arrivals_per_step: f64,
    /// Fraction of requests that are [`VmKind::Degradable`].
    pub degradable_fraction: f64,
    /// Median lifetime in steps (log-normal location).
    pub median_lifetime_steps: f64,
    /// Log-normal shape parameter of the lifetime distribution.
    pub lifetime_sigma: f64,
    /// Hard cap on lifetimes, in steps.
    pub max_lifetime_steps: u32,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            arrivals_per_step: 120.0,
            degradable_fraction: 0.0,
            // Median 1 h; sigma 2.0 gives a mean of ~7.4× the median —
            // most VMs are short-lived, a heavy tail runs for days, as
            // in the published Azure trace statistics.
            median_lifetime_steps: 4.0,
            lifetime_sigma: 2.0,
            max_lifetime_steps: vb_trace::STEPS_PER_DAY as u32 * 14, // two weeks
        }
    }
}

impl WorkloadConfig {
    /// Expected cores per arrival under the shape mix.
    pub fn mean_cores(&self) -> f64 {
        SHAPES.iter().map(|&(c, _, p)| c as f64 * p).sum()
    }

    /// Expected lifetime (in steps) of the truncated log-normal.
    pub fn mean_lifetime_steps(&self) -> f64 {
        // E[lognormal] = median * exp(sigma^2 / 2); truncation shaves a
        // little off, which the calibration constructor absorbs.
        self.median_lifetime_steps * (self.lifetime_sigma * self.lifetime_sigma / 2.0).exp()
    }

    /// Derive the arrival rate that holds a cluster of `total_cores` at
    /// `target_util` utilization in steady state (Little's law:
    /// `rate × E[lifetime] × E[cores] = target cores`).
    pub fn for_cluster(total_cores: u32, target_util: f64) -> WorkloadConfig {
        let mut cfg = WorkloadConfig::default();
        let target_cores = total_cores as f64 * target_util;
        cfg.arrivals_per_step = target_cores / (cfg.mean_lifetime_steps() * cfg.mean_cores());
        cfg
    }

    /// Builder: set the degradable fraction.
    pub fn with_degradable_fraction(mut self, f: f64) -> WorkloadConfig {
        self.degradable_fraction = f;
        self
    }
}

/// A seeded stream of VM arrival batches.
#[derive(Debug, Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    rng: StdRng,
}

impl Workload {
    /// Create a generator from a config and seed.
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Workload {
        Workload {
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Draw the arrivals for one step.
    pub fn step(&mut self) -> Vec<VmRequest> {
        let n = poisson(&mut self.rng, self.cfg.arrivals_per_step);
        (0..n).map(|_| self.draw_request()).collect()
    }

    fn draw_request(&mut self) -> VmRequest {
        let (cores, mem_per_core) = self.draw_shape();
        let lifetime = self.draw_lifetime();
        let kind = if self.rng.gen::<f64>() < self.cfg.degradable_fraction {
            VmKind::Degradable
        } else {
            VmKind::Stable
        };
        VmRequest {
            cores,
            mem_gb: cores as f64 * mem_per_core,
            kind,
            lifetime_steps: lifetime,
        }
    }

    /// Draw the steady-state resident population of the M/G/∞ system
    /// this workload feeds: the VM count is Poisson with mean
    /// `rate × E[lifetime]`, lifetimes are *length-biased* (long-lived
    /// VMs are over-represented among residents), and each VM's
    /// remaining lifetime is uniform over its total lifetime.
    ///
    /// Used to pre-fill a cluster so a simulation starts at its
    /// steady-state utilization instead of waiting weeks of simulated
    /// warm-up for the heavy lifetime tail to accumulate.
    pub fn steady_state_population(&mut self) -> Vec<(VmRequest, u32)> {
        let mean_pop = self.cfg.arrivals_per_step * self.cfg.mean_lifetime_steps();
        let n = poisson(&mut self.rng, mean_pop);
        (0..n)
            .map(|_| {
                // Length-biased lifetime via rejection against the cap.
                let req = loop {
                    let r = self.draw_request();
                    let accept = r.lifetime_steps as f64 / self.cfg.max_lifetime_steps as f64;
                    if self.rng.gen::<f64>() < accept {
                        break r;
                    }
                };
                let residual = self.rng.gen_range(1..=req.lifetime_steps);
                (req, residual)
            })
            .collect()
    }

    fn draw_shape(&mut self) -> (u32, f64) {
        let mut u = self.rng.gen::<f64>();
        for &(cores, mem, p) in SHAPES {
            if u < p {
                return (cores, mem);
            }
            u -= p;
        }
        // vb-audit: allow(no-panic, SHAPES is a non-empty compile-time table)
        let &(cores, mem, _) = SHAPES.last().expect("non-empty shape table");
        (cores, mem)
    }

    fn draw_lifetime(&mut self) -> u32 {
        let z: f64 = standard_normal(&mut self.rng);
        let steps = self.cfg.median_lifetime_steps * (self.cfg.lifetime_sigma * z).exp();
        (steps.round() as u32).clamp(1, self.cfg.max_lifetime_steps)
    }
}

/// Poisson sample via inversion (rates here are modest) with a normal
/// approximation fallback for large rates.
fn poisson(rng: &mut StdRng, rate: f64) -> usize {
    if rate <= 0.0 {
        return 0;
    }
    if rate > 500.0 {
        let z = standard_normal(rng);
        return (rate + rate.sqrt() * z).round().max(0.0) as usize;
    }
    let l = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Standard normal via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_probabilities_sum_to_one() {
        let total: f64 = SHAPES.iter().map(|&(_, _, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = Workload::new(WorkloadConfig::default(), 1);
        let mut b = Workload::new(WorkloadConfig::default(), 1);
        for _ in 0..5 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn arrival_rate_matches_config() {
        let cfg = WorkloadConfig {
            arrivals_per_step: 50.0,
            ..WorkloadConfig::default()
        };
        let mut w = Workload::new(cfg, 2);
        let total: usize = (0..200).map(|_| w.step().len()).sum();
        let mean = total as f64 / 200.0;
        assert!((mean - 50.0).abs() < 3.0, "mean arrivals {mean}");
    }

    #[test]
    fn shapes_are_from_the_mix_and_small_dominate() {
        let mut w = Workload::new(WorkloadConfig::default(), 3);
        let mut small = 0usize;
        let mut total = 0usize;
        for _ in 0..50 {
            for r in w.step() {
                assert!(
                    SHAPES.iter().any(|&(c, _, _)| c == r.cores),
                    "core size {}",
                    r.cores
                );
                assert!(r.mem_gb > 0.0);
                assert!(r.lifetime_steps >= 1);
                if r.cores <= 4 {
                    small += 1;
                }
                total += 1;
            }
        }
        assert!(total > 100);
        assert!(
            small as f64 / total as f64 > 0.7,
            "small VMs should dominate: {small}/{total}"
        );
    }

    #[test]
    fn lifetimes_are_heavy_tailed() {
        let mut w = Workload::new(WorkloadConfig::default(), 4);
        let lifetimes: Vec<f64> = (0..200)
            .flat_map(|_| w.step())
            .map(|r| r.lifetime_steps as f64)
            .collect();
        let s = vb_stats::Summary::of(&lifetimes);
        assert!(s.mean > s.p50 * 1.5, "mean {} vs median {}", s.mean, s.p50);
        assert!(s.max <= WorkloadConfig::default().max_lifetime_steps as f64);
    }

    #[test]
    fn degradable_fraction_is_respected() {
        let cfg = WorkloadConfig::default().with_degradable_fraction(0.5);
        let mut w = Workload::new(cfg, 5);
        let reqs: Vec<VmRequest> = (0..100).flat_map(|_| w.step()).collect();
        let deg = reqs.iter().filter(|r| r.kind == VmKind::Degradable).count();
        let frac = deg as f64 / reqs.len() as f64;
        assert!((frac - 0.5).abs() < 0.08, "degradable fraction {frac}");
    }

    #[test]
    fn for_cluster_hits_littles_law() {
        // rate * E[cores] * E[lifetime] ≈ target cores.
        let cfg = WorkloadConfig::for_cluster(28_000, 0.7);
        let implied = cfg.arrivals_per_step * cfg.mean_cores() * cfg.mean_lifetime_steps();
        assert!((implied - 19_600.0).abs() < 1.0, "implied cores {implied}");
    }

    #[test]
    fn poisson_large_rate_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = poisson(&mut rng, 10_000.0);
        assert!((9_000..11_000).contains(&n), "n {n}");
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }
}
