#![warn(missing_docs)]

//! # vb-cluster — renewable-powered data-center simulator
//!
//! Reproduces the trace-driven simulation of §3 of the paper, which
//! quantifies the network overhead of the multi-VB design:
//!
//! > "We instantiate a site with ≈700 servers each with 40 cores and
//! > 512 GB memory. We use an Azure production VM arrival trace and
//! > Azure's VM allocation policy to assign VMs to servers. We scale the
//! > ELIA dataset such that the cluster is fully powered at the max
//! > power capacity of the farm. When power decreases, we first power
//! > down unallocated cores, then if needed, we migrate out VMs from
//! > servers (in a round-robin order). We use an admission control
//! > policy that rejects VMs to maintain 70 % utilization. When power
//! > increases, we launch previously rejected VMs and consider these as
//! > VMs migrated into the site. We use the memory allocated to a VM for
//! > estimating migration traffic."
//!
//! * [`vm`] — VM specs (cores, memory), stable vs degradable kinds, and
//!   lifetimes.
//! * [`workload`] — a synthetic arrival process standing in for the
//!   proprietary Azure trace, matched to its published statistics
//!   (discrete core-size mix, heavy-tailed lifetimes, ~70 % steady-state
//!   utilization).
//! * [`cluster`] — the site simulator itself: Protean-style best-fit
//!   placement, the power-capping cascade (power down idle cores →
//!   hibernate degradable VMs → migrate out stable VMs round-robin),
//!   admission control, and pending-VM relaunch on power recovery.
//! * [`sim`] — a driver that runs a cluster against a power trace and
//!   collects the per-interval migration-traffic series of Figure 4.
//! * [`power`] — a linear server power model (§4's capping mechanisms)
//!   and run-level energy accounting (§5's energy-overhead argument).

pub mod cluster;
pub mod power;
pub mod sim;
pub mod vm;
pub mod workload;

pub use cluster::{Cluster, ClusterConfig, StepStats};
pub use power::{energy_report, EnergyReport, PowerModel};
pub use sim::{simulate, simulate_paper_site, SimOutput};
pub use vm::{VmKind, VmRequest};
pub use workload::{Workload, WorkloadConfig};
