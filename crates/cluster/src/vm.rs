//! Virtual machines: shapes, kinds and lifetimes.

use serde::{Deserialize, Serialize};

/// The two application classes of §2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmKind {
    /// Requires cloud-level availability; a power shortfall forces a
    /// *migration* (WAN traffic equal to the VM's memory).
    Stable,
    /// Harvest/Spot-like: can be degraded or hibernated in place when
    /// power dips, at no WAN cost.
    Degradable,
}

impl VmKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            VmKind::Stable => "stable",
            VmKind::Degradable => "degradable",
        }
    }
}

/// A request to run one VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmRequest {
    /// vCPU cores.
    pub cores: u32,
    /// Allocated memory in GB — also the migration cost in GB (§3: "We
    /// use the memory allocated to a VM for estimating migration
    /// traffic").
    pub mem_gb: f64,
    /// Stable or degradable.
    pub kind: VmKind,
    /// Total lifetime in simulation steps (15-minute intervals). The VM
    /// departs this many steps after its *arrival*, whether or not it
    /// spent time queued or hibernated in between.
    pub lifetime_steps: u32,
}

impl VmRequest {
    /// A stable VM with the given shape.
    pub fn stable(cores: u32, mem_gb: f64, lifetime_steps: u32) -> VmRequest {
        VmRequest {
            cores,
            mem_gb,
            kind: VmKind::Stable,
            lifetime_steps,
        }
    }

    /// A degradable VM with the given shape.
    pub fn degradable(cores: u32, mem_gb: f64, lifetime_steps: u32) -> VmRequest {
        VmRequest {
            cores,
            mem_gb,
            kind: VmKind::Degradable,
            lifetime_steps,
        }
    }
}

/// Internal identifier of a VM living in a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub(crate) usize);

/// Where a VM currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Running on a server (index).
    Running(usize),
    /// Degradable VM paused in place on a server (index) during a power
    /// shortfall; holds no powered cores.
    Hibernated(usize),
}

/// A VM resident in a cluster.
#[derive(Debug, Clone)]
pub struct Vm {
    /// The request this VM was created from.
    pub request: VmRequest,
    /// Current lifecycle state.
    pub state: VmState,
    /// Step at which the VM arrived.
    pub arrived_at: u64,
    /// Step at which the VM departs (arrival + lifetime).
    pub departs_at: u64,
}

impl Vm {
    /// True when the VM's lifetime is over at `now`.
    pub fn expired(&self, now: u64) -> bool {
        now >= self.departs_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let s = VmRequest::stable(4, 16.0, 10);
        let d = VmRequest::degradable(2, 8.0, 5);
        assert_eq!(s.kind, VmKind::Stable);
        assert_eq!(d.kind, VmKind::Degradable);
        assert_eq!(s.cores, 4);
        assert_eq!(d.mem_gb, 8.0);
    }

    #[test]
    fn expiry_is_at_departure_step() {
        let vm = Vm {
            request: VmRequest::stable(1, 4.0, 10),
            state: VmState::Running(0),
            arrived_at: 5,
            departs_at: 15,
        };
        assert!(!vm.expired(14));
        assert!(vm.expired(15));
    }

    #[test]
    fn labels() {
        assert_eq!(VmKind::Stable.label(), "stable");
        assert_eq!(VmKind::Degradable.label(), "degradable");
    }
}
