//! The single-site cluster simulator.
//!
//! Implements the paper's §3 power-capping cascade at 15-minute
//! granularity:
//!
//! 1. A power drop first "powers down unallocated cores" — free
//!    absorption, no traffic.
//! 2. Still short? *Degradable* VMs hibernate in place (they absorb
//!    variability at no WAN cost — the property the §3.1 scheduler
//!    exploits).
//! 3. Still short? *Stable* VMs are migrated out of servers in
//!    round-robin order; each migration costs the VM's memory in GB of
//!    WAN traffic.
//! 4. A power rise resumes hibernated VMs (no traffic), then launches
//!    previously rejected VMs, which count as migrations *into* the site.
//!
//! Admission control rejects arrivals that would push utilization above
//! the target (70 % in the paper); rejected VMs wait in a pending queue
//! until power returns or their lifetime lapses.

use crate::vm::{Vm, VmId, VmKind, VmRequest, VmState};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Cluster sizing and policy knobs. Defaults are the paper's setup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers (paper: ≈700).
    pub n_servers: usize,
    /// Cores per server (paper: 40).
    pub cores_per_server: u32,
    /// Memory per server in GB (paper: 512).
    pub mem_per_server_gb: f64,
    /// Admission-control utilization target (paper: 0.70).
    pub target_util: f64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            n_servers: 700,
            cores_per_server: 40,
            mem_per_server_gb: 512.0,
            target_util: 0.70,
        }
    }
}

impl ClusterConfig {
    /// Total cores across all servers.
    pub fn total_cores(&self) -> u32 {
        self.n_servers as u32 * self.cores_per_server
    }
}

/// Per-server bookkeeping.
#[derive(Debug, Clone)]
struct ServerState {
    free_cores: u32,
    free_mem: f64,
    /// Running VMs on this server.
    running: Vec<VmId>,
}

/// A stable VM evicted by a power shortfall, ready to be re-placed at
/// another site by the multi-VB scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct EvictedVm {
    /// The evicted VM's original request (shape, kind, lifetime).
    pub request: VmRequest,
    /// Absolute step at which the VM's lifetime ends.
    pub departs_at: u64,
}

/// Outcome of one simulation step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StepStats {
    /// Step index (15-minute intervals since simulation start).
    pub step: u64,
    /// Power available this step, as a fraction of full cluster power.
    pub power_frac: f64,
    /// Cores the power budget can keep on.
    pub budget_cores: u32,
    /// Cores allocated to running VMs after the step.
    pub allocated_cores: u32,
    /// allocated / total.
    pub utilization: f64,
    /// GB migrated out (stable evictions) this step.
    pub out_gb: f64,
    /// GB migrated in (pending launches) this step.
    pub in_gb: f64,
    /// Number of VMs migrated out.
    pub migrations_out: usize,
    /// Number of VMs migrated in.
    pub migrations_in: usize,
    /// Degradable VMs hibernated this step.
    pub hibernated: usize,
    /// Hibernated VMs resumed this step.
    pub resumed: usize,
    /// Fresh arrivals admitted directly (no traffic).
    pub admitted: usize,
    /// Fresh arrivals queued by admission control.
    pub queued: usize,
    /// Pending queue length after the step.
    pub pending_len: usize,
}

/// A renewable-powered VB site's compute cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    cfg: ClusterConfig,
    servers: Vec<ServerState>,
    /// Slab of VMs; freed slots are `None`.
    vms: Vec<Option<Vm>>,
    /// Rejected requests waiting for power, with their arrival step.
    pending: VecDeque<(VmRequest, u64)>,
    /// Hibernated degradable VMs, oldest first.
    hibernated: VecDeque<VmId>,
    /// Round-robin eviction cursor over servers.
    rr_cursor: usize,
    /// Current step.
    now: u64,
    /// Cores held by running VMs.
    allocated_cores: u32,
    /// Power budget in cores, set by [`Cluster::set_power`].
    budget_cores: u32,
}

impl Cluster {
    /// A fully powered, empty cluster.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        let servers = (0..cfg.n_servers)
            .map(|_| ServerState {
                free_cores: cfg.cores_per_server,
                free_mem: cfg.mem_per_server_gb,
                running: Vec::new(),
            })
            .collect();
        let budget = cfg.total_cores();
        Cluster {
            cfg,
            servers,
            vms: Vec::new(),
            pending: VecDeque::new(),
            hibernated: VecDeque::new(),
            rr_cursor: 0,
            now: 0,
            allocated_cores: 0,
            budget_cores: budget,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Current simulation step.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cores allocated to running VMs.
    pub fn allocated_cores(&self) -> u32 {
        self.allocated_cores
    }

    /// Utilization: allocated cores / total cores.
    pub fn utilization(&self) -> f64 {
        self.allocated_cores as f64 / self.cfg.total_cores() as f64
    }

    /// Number of VMs currently running.
    pub fn running_vms(&self) -> usize {
        self.vms
            .iter()
            .flatten()
            .filter(|v| matches!(v.state, VmState::Running(_)))
            .count()
    }

    /// Number of VMs currently hibernated.
    pub fn hibernated_vms(&self) -> usize {
        self.hibernated.len()
    }

    /// Length of the pending (rejected) queue.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Run one full step: advance time, expire VMs, apply the power
    /// budget (evicting if needed), recover capacity, then process fresh
    /// arrivals. Evicted stable VMs are dropped (single-site semantics);
    /// multi-site simulations should instead call the primitives
    /// ([`Cluster::advance`], [`Cluster::set_power`],
    /// [`Cluster::recover`], [`Cluster::admit`]) and re-route evictions.
    pub fn step(&mut self, power_frac: f64, arrivals: &[VmRequest]) -> StepStats {
        let mut stats = StepStats {
            step: self.now,
            power_frac,
            ..StepStats::default()
        };
        self.advance();
        // Single-site semantics: evicted VMs leave the system entirely.
        let _evicted = self.set_power(power_frac, &mut stats);
        self.recover(&mut stats);
        for &req in arrivals {
            if self.admit(req) {
                stats.admitted += 1;
            } else {
                stats.queued += 1;
            }
        }
        self.finish_stats(&mut stats);
        stats
    }

    /// Advance the clock one step and expire finished VMs (running,
    /// hibernated, and pending).
    pub fn advance(&mut self) {
        self.now += 1;
        let now = self.now;
        // Expire resident VMs.
        for id in 0..self.vms.len() {
            let expired = self.vms[id].as_ref().is_some_and(|vm| vm.expired(now));
            if expired {
                self.remove_vm(VmId(id));
            }
        }
        self.hibernated.retain(|id| {
            // remove_vm above already dropped expired ones from the slab.
            self.vms[id.0].is_some()
        });
        // Expire pending requests whose lifetime has lapsed.
        self.pending
            .retain(|(req, arrived)| arrived + req.lifetime_steps as u64 > now);
    }

    /// Apply a power budget. Returns the stable VMs evicted to satisfy
    /// it; the caller decides where they go (another site, or dropped).
    pub fn set_power(&mut self, power_frac: f64, stats: &mut StepStats) -> Vec<EvictedVm> {
        let budget = (power_frac.clamp(0.0, 1.0) * self.cfg.total_cores() as f64).floor() as u32;
        self.budget_cores = budget;
        stats.budget_cores = budget;

        let mut evicted = Vec::new();
        if self.allocated_cores <= budget {
            return evicted;
        }

        // 1) Hibernate degradable VMs, round-robin over servers.
        self.for_each_rr_victim(budget, true, |cluster, id| {
            cluster.hibernate(id);
            stats.hibernated += 1;
        });

        // 2) Migrate out stable VMs, round-robin over servers.
        if self.allocated_cores > budget {
            let mut out = Vec::new();
            self.for_each_rr_victim(budget, false, |cluster, id| {
                // vb-audit: allow(no-panic, for_each_rr_victim only yields ids of live vm slots)
                let vm = cluster.vms[id.0].as_ref().expect("victim exists");
                out.push(EvictedVm {
                    request: vm.request,
                    departs_at: vm.departs_at,
                });
                stats.out_gb += vm.request.mem_gb;
                stats.migrations_out += 1;
                cluster.remove_vm(id);
            });
            evicted = out;
        }
        evicted
    }

    /// Recover capacity after a power rise: resume hibernated VMs (no
    /// traffic), then launch pending requests — which count as
    /// migrations in (§3).
    pub fn recover(&mut self, stats: &mut StepStats) {
        // Resume hibernated VMs oldest-first while the budget allows.
        while let Some(&id) = self.hibernated.front() {
            let cores = self.vms[id.0]
                .as_ref()
                // vb-audit: allow(no-panic, the hibernated queue holds only live vm slots by construction)
                .expect("hibernated vm exists")
                .request
                .cores;
            if self.allocated_cores + cores > self.budget_cores {
                break;
            }
            if !self.resume(id) {
                break; // no server can host it right now
            }
            self.hibernated.pop_front();
            stats.resumed += 1;
        }

        // Launch pending requests under both the power budget and the
        // admission-control target. The queue is scanned in FIFO order,
        // but an entry that does not fit right now (capacity or
        // fragmentation) must not block smaller entries behind it. A
        // consecutive-failure bound keeps the scan cheap when the queue
        // is long and the capacity exhausted.
        const MAX_CONSECUTIVE_FAILURES: usize = 200;
        let admit_cap = self.admission_cap();
        let mut i = 0usize;
        let mut failures = 0usize;
        while i < self.pending.len() && failures < MAX_CONSECUTIVE_FAILURES {
            if self.allocated_cores >= admit_cap {
                break;
            }
            let (req, arrived) = self.pending[i];
            let fits_cap = self.allocated_cores + req.cores <= admit_cap;
            let departs_at = arrived + req.lifetime_steps as u64;
            if fits_cap && self.place(req, arrived, departs_at).is_some() {
                self.pending.remove(i);
                stats.in_gb += req.mem_gb;
                stats.migrations_in += 1;
                failures = 0;
            } else {
                i += 1;
                failures += 1;
            }
        }
    }

    /// Try to admit a fresh arrival. Returns false (and queues it) when
    /// admission control or the power budget rejects it. Requests that
    /// could never fit any server are dropped outright.
    pub fn admit(&mut self, req: VmRequest) -> bool {
        if req.cores > self.cfg.cores_per_server || req.mem_gb > self.cfg.mem_per_server_gb {
            return false; // can never be hosted here
        }
        if self.allocated_cores + req.cores <= self.admission_cap() {
            let departs_at = self.now + req.lifetime_steps as u64;
            if self.place(req, self.now, departs_at).is_some() {
                return true;
            }
        }
        self.pending.push_back((req, self.now));
        false
    }

    /// Place a VM that is migrating in from another site (multi-VB).
    /// Unlike [`Cluster::admit`] the remaining lifetime is preserved via
    /// `departs_at`. Returns false if it does not fit right now.
    pub fn place_migrated(&mut self, req: VmRequest, departs_at: u64) -> bool {
        if departs_at <= self.now {
            return true; // lifetime already over; nothing to place
        }
        if self.allocated_cores + req.cores > self.admission_cap() {
            return false;
        }
        self.place(req, self.now, departs_at).is_some()
    }

    /// Cores admissible under the admission-control target: 70 % of the
    /// *currently powered* capacity. Keeping headroom relative to the
    /// power budget is what lets "minor variations in power [be]
    /// absorbed by simply powering down un-allocated cores" (§3) even at
    /// sites that rarely reach nameplate output.
    fn admission_cap(&self) -> u32 {
        (self.cfg.target_util * self.budget_cores as f64).floor() as u32
    }

    fn finish_stats(&self, stats: &mut StepStats) {
        stats.allocated_cores = self.allocated_cores;
        stats.utilization = self.utilization();
        stats.pending_len = self.pending.len();
    }

    /// Best-fit placement: the powered server with the fewest free cores
    /// that still fits the request (Protean-style tight packing).
    fn place(&mut self, req: VmRequest, arrived_at: u64, departs_at: u64) -> Option<VmId> {
        let server = self
            .servers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.free_cores >= req.cores && s.free_mem >= req.mem_gb)
            .min_by_key(|(_, s)| s.free_cores)
            .map(|(i, _)| i)?;
        let id = self.alloc_slot(Vm {
            request: req,
            state: VmState::Running(server),
            arrived_at,
            departs_at,
        });
        self.servers[server].free_cores -= req.cores;
        self.servers[server].free_mem -= req.mem_gb;
        self.servers[server].running.push(id);
        self.allocated_cores += req.cores;
        Some(id)
    }

    fn alloc_slot(&mut self, vm: Vm) -> VmId {
        if let Some(idx) = self.vms.iter().position(Option::is_none) {
            self.vms[idx] = Some(vm);
            VmId(idx)
        } else {
            self.vms.push(Some(vm));
            VmId(self.vms.len() - 1)
        }
    }

    /// Remove a VM entirely (expiry or migration out).
    fn remove_vm(&mut self, id: VmId) {
        let Some(vm) = self.vms[id.0].take() else {
            return;
        };
        match vm.state {
            VmState::Running(s) => {
                self.servers[s].free_cores += vm.request.cores;
                self.servers[s].free_mem += vm.request.mem_gb;
                self.servers[s].running.retain(|&v| v != id);
                self.allocated_cores -= vm.request.cores;
            }
            VmState::Hibernated(s) => {
                self.servers[s].free_mem += vm.request.mem_gb;
                // Hibernated VMs hold no cores.
            }
        }
    }

    /// Hibernate a running degradable VM in place: cores freed, memory
    /// retained on the server.
    fn hibernate(&mut self, id: VmId) {
        // vb-audit: allow(no-panic, callers pass ids taken from live server run-lists)
        let vm = self.vms[id.0].as_mut().expect("vm exists");
        let VmState::Running(s) = vm.state else {
            return;
        };
        vm.state = VmState::Hibernated(s);
        let cores = vm.request.cores;
        self.servers[s].free_cores += cores;
        self.servers[s].running.retain(|&v| v != id);
        self.allocated_cores -= cores;
        self.hibernated.push_back(id);
    }

    /// Resume a hibernated VM, preferring its home server and falling
    /// back to any powered server (an intra-site move, no WAN traffic).
    fn resume(&mut self, id: VmId) -> bool {
        let (req, home) = {
            // vb-audit: allow(no-panic, callers pass ids taken from the live hibernated queue)
            let vm = self.vms[id.0].as_ref().expect("vm exists");
            let VmState::Hibernated(s) = vm.state else {
                return false;
            };
            (vm.request, s)
        };
        let target = if self.servers[home].free_cores >= req.cores {
            Some(home)
        } else {
            self.servers
                .iter()
                .enumerate()
                .filter(|(_, s)| s.free_cores >= req.cores && s.free_mem >= req.mem_gb)
                .min_by_key(|(_, s)| s.free_cores)
                .map(|(i, _)| i)
        };
        let Some(target) = target else {
            return false;
        };
        if target != home {
            self.servers[home].free_mem += req.mem_gb;
            self.servers[target].free_mem -= req.mem_gb;
        }
        // vb-audit: allow(no-panic, id was checked against a live slot at the top of resume)
        let vm = self.vms[id.0].as_mut().expect("vm exists");
        vm.state = VmState::Running(target);
        self.servers[target].free_cores -= req.cores;
        self.servers[target].running.push(id);
        self.allocated_cores += req.cores;
        true
    }

    /// Visit running VMs in round-robin order over servers (one victim
    /// per server visit), calling `evict` until the allocation fits the
    /// budget or no candidate remains. `degradable_only` selects the
    /// hibernation pass vs the migration pass.
    fn for_each_rr_victim(
        &mut self,
        budget: u32,
        degradable_only: bool,
        mut evict: impl FnMut(&mut Cluster, VmId),
    ) {
        let n = self.servers.len();
        let mut visited_without_victim = 0usize;
        while self.allocated_cores > budget && visited_without_victim < n {
            let s = self.rr_cursor % n;
            self.rr_cursor = (self.rr_cursor + 1) % n;
            let victim = self.servers[s].running.iter().rev().copied().find(|id| {
                // vb-audit: allow(no-panic, server run-lists reference only live vm slots)
                let vm = self.vms[id.0].as_ref().expect("listed vm exists");
                degradable_only == (vm.request.kind == VmKind::Degradable)
            });
            match victim {
                Some(id) => {
                    evict(self, id);
                    visited_without_victim = 0;
                }
                None => visited_without_victim += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            n_servers: 4,
            cores_per_server: 10,
            mem_per_server_gb: 100.0,
            target_util: 0.7,
        }
    }

    fn stats() -> StepStats {
        StepStats::default()
    }

    #[test]
    fn admission_respects_utilization_target() {
        // 40 cores total, 70% target -> 28 cores admissible.
        let mut c = Cluster::new(small_cfg());
        for _ in 0..7 {
            assert!(c.admit(VmRequest::stable(4, 16.0, 100)));
        }
        assert_eq!(c.allocated_cores(), 28);
        assert!(
            !c.admit(VmRequest::stable(4, 16.0, 100)),
            "29th core rejected"
        );
        assert_eq!(c.pending_len(), 1);
    }

    #[test]
    fn placement_is_best_fit() {
        let mut c = Cluster::new(small_cfg());
        // Fill server A with 8 cores, leaving 2 free.
        assert!(c.admit(VmRequest::stable(8, 32.0, 100)));
        // A 2-core VM should land on the same (tightest) server.
        assert!(c.admit(VmRequest::stable(2, 8.0, 100)));
        let used_servers = c.servers.iter().filter(|s| s.free_cores < 10).count();
        assert_eq!(used_servers, 1, "best-fit should consolidate");
    }

    #[test]
    fn power_drop_powers_down_unallocated_cores_first() {
        let mut c = Cluster::new(small_cfg());
        c.admit(VmRequest::stable(10, 40.0, 100));
        let mut st = stats();
        // Power down to 50% (20 cores) with only 10 allocated: no
        // migrations, absorbed by unallocated cores.
        let evicted = c.set_power(0.5, &mut st);
        assert!(evicted.is_empty());
        assert_eq!(st.migrations_out, 0);
        assert_eq!(c.allocated_cores(), 10);
    }

    #[test]
    fn deep_power_drop_migrates_stable_vms() {
        let mut c = Cluster::new(small_cfg());
        for _ in 0..4 {
            c.admit(VmRequest::stable(5, 20.0, 100));
        }
        assert_eq!(c.allocated_cores(), 20);
        let mut st = stats();
        // 25% power = 10 cores: two 5-core VMs must leave.
        let evicted = c.set_power(0.25, &mut st);
        assert_eq!(evicted.len(), 2);
        assert_eq!(st.migrations_out, 2);
        assert!((st.out_gb - 40.0).abs() < 1e-9, "2 × 20 GB memory");
        assert_eq!(c.allocated_cores(), 10);
    }

    #[test]
    fn degradable_vms_hibernate_before_stable_vms_migrate() {
        let mut c = Cluster::new(small_cfg());
        c.admit(VmRequest::stable(5, 20.0, 100));
        c.admit(VmRequest::degradable(5, 20.0, 100));
        c.admit(VmRequest::degradable(5, 20.0, 100));
        let mut st = stats();
        // Budget 10 cores; shortfall of 5: one degradable hibernates.
        let evicted = c.set_power(0.25, &mut st);
        assert!(evicted.is_empty(), "no stable migration needed");
        assert_eq!(st.hibernated, 1);
        assert_eq!(c.hibernated_vms(), 1);
        assert_eq!(c.allocated_cores(), 10);
        // Budget 5 cores: hibernating the second degradable exactly fits
        // the stable VM — still no migration.
        let mut st2 = stats();
        let evicted2 = c.set_power(0.125, &mut st2);
        assert_eq!(st2.hibernated, 1);
        assert!(evicted2.is_empty());
        assert_eq!(c.allocated_cores(), 5);
        // Power to zero: now the stable VM must migrate out.
        let mut st3 = stats();
        let evicted3 = c.set_power(0.0, &mut st3);
        assert_eq!(evicted3.len(), 1);
        assert_eq!(evicted3[0].request.kind, VmKind::Stable);
        assert_eq!(c.allocated_cores(), 0);
    }

    #[test]
    fn power_recovery_resumes_then_launches_pending() {
        let mut c = Cluster::new(small_cfg());
        c.admit(VmRequest::degradable(5, 20.0, 100));
        let mut st = stats();
        c.set_power(0.0, &mut st);
        assert_eq!(c.hibernated_vms(), 1);
        // Queue a fresh arrival while dark.
        assert!(!c.admit(VmRequest::stable(4, 16.0, 100)));
        // Power returns fully.
        let mut st2 = stats();
        let ev = c.set_power(1.0, &mut st2);
        assert!(ev.is_empty());
        c.recover(&mut st2);
        assert_eq!(st2.resumed, 1, "hibernated VM resumes free of charge");
        assert_eq!(
            st2.migrations_in, 1,
            "pending launch counts as migration in"
        );
        assert!((st2.in_gb - 16.0).abs() < 1e-9);
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn expired_vms_release_resources() {
        let mut c = Cluster::new(small_cfg());
        c.admit(VmRequest::stable(4, 16.0, 2));
        assert_eq!(c.allocated_cores(), 4);
        c.advance(); // now = 1
        assert_eq!(c.allocated_cores(), 4);
        c.advance(); // now = 2 = departs_at
        assert_eq!(c.allocated_cores(), 0);
        assert_eq!(c.running_vms(), 0);
    }

    #[test]
    fn pending_requests_expire_with_their_lifetime() {
        let mut c = Cluster::new(small_cfg());
        let mut st = stats();
        c.set_power(0.0, &mut st);
        assert!(!c.admit(VmRequest::stable(1, 4.0, 3)));
        assert_eq!(c.pending_len(), 1);
        for _ in 0..3 {
            c.advance();
        }
        assert_eq!(c.pending_len(), 0, "expired pending request dropped");
    }

    #[test]
    fn place_migrated_preserves_departure_time() {
        let mut c = Cluster::new(small_cfg());
        assert!(c.place_migrated(VmRequest::stable(2, 8.0, 100), 3));
        assert_eq!(c.allocated_cores(), 2);
        c.advance();
        c.advance();
        c.advance(); // now = 3: VM departs
        assert_eq!(c.allocated_cores(), 0);
    }

    #[test]
    fn place_migrated_rejects_over_cap() {
        let mut c = Cluster::new(small_cfg());
        // Admission cap is 28 cores.
        assert!(
            !c.place_migrated(VmRequest::stable(28, 100.0, 100), 1_000),
            "a single 28-core VM cannot fit a 10-core server"
        );
        assert!(c.place_migrated(VmRequest::stable(10, 40.0, 1_000), 1_000));
        assert!(c.place_migrated(VmRequest::stable(10, 40.0, 1_000), 1_000));
        assert!(
            !c.place_migrated(VmRequest::stable(10, 40.0, 1_000), 1_000),
            "30 cores would exceed the 28-core admission cap"
        );
    }

    #[test]
    fn full_step_composes_the_cascade() {
        let mut c = Cluster::new(small_cfg());
        let arrivals: Vec<VmRequest> = (0..5).map(|_| VmRequest::stable(4, 16.0, 50)).collect();
        let st = c.step(1.0, &arrivals);
        assert_eq!(st.admitted, 5);
        assert_eq!(st.queued, 0);
        assert_eq!(st.allocated_cores, 20);
        assert!((st.utilization - 0.5).abs() < 1e-9);
        // Night: power to zero evicts everything.
        let st2 = c.step(0.0, &[]);
        assert_eq!(st2.migrations_out, 5);
        assert!((st2.out_gb - 80.0).abs() < 1e-9);
        assert_eq!(st2.allocated_cores, 0);
    }

    #[test]
    fn budget_tracks_power_fraction() {
        let mut c = Cluster::new(small_cfg());
        let mut st = stats();
        c.set_power(0.33, &mut st);
        assert_eq!(st.budget_cores, 13); // floor(0.33 * 40)
        c.set_power(2.0, &mut st);
        assert_eq!(st.budget_cores, 40, "clamped to full power");
    }

    #[test]
    fn resource_accounting_stays_consistent() {
        // Run a random-ish sequence and check the server-level invariant.
        let mut c = Cluster::new(small_cfg());
        let power = [1.0, 0.6, 0.1, 0.0, 0.4, 0.9, 1.0, 0.2];
        for (i, &p) in power.iter().enumerate() {
            let arrivals: Vec<VmRequest> = (0..3)
                .map(|k| {
                    if (i + k) % 2 == 0 {
                        VmRequest::stable(2 + (k as u32 % 3), 8.0, 4 + k as u32)
                    } else {
                        VmRequest::degradable(1 + (k as u32 % 4), 6.0, 6)
                    }
                })
                .collect();
            c.step(p, &arrivals);
            let used: u32 = c
                .servers
                .iter()
                .map(|s| c.cfg.cores_per_server - s.free_cores)
                .sum();
            assert_eq!(used, c.allocated_cores(), "core accounting at step {i}");
            assert!(c.allocated_cores() <= c.budget_cores, "budget respected");
            for s in &c.servers {
                assert!(s.free_mem >= -1e-9, "memory over-committed");
            }
        }
    }
}
