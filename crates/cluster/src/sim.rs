//! Trace-driven single-site simulation (the Figure 4 experiment).
//!
//! Runs a [`Cluster`] against a normalized power trace with a synthetic
//! Azure-like workload and collects the per-interval migration-traffic
//! series. A warm-up phase at full power lets the cluster reach its
//! steady-state ~70 % utilization before the power trace starts, as in
//! the paper's setup ("the cluster is running at 70 % utilization").

use crate::cluster::{Cluster, ClusterConfig, StepStats};
use crate::workload::{Workload, WorkloadConfig};
use serde::{Deserialize, Serialize};
use vb_stats::TimeSeries;

/// Result of a single-site simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimOutput {
    /// One entry per trace step (warm-up excluded).
    pub steps: Vec<StepStats>,
}

impl SimOutput {
    /// Outbound migration traffic per step, GB.
    pub fn out_gb(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.out_gb).collect()
    }

    /// Inbound migration traffic per step, GB.
    pub fn in_gb(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.in_gb).collect()
    }

    /// Power fraction per step (echo of the input trace).
    pub fn power(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.power_frac).collect()
    }

    /// Fraction of *power-change* steps that required no migration at
    /// all — the paper's "> 80 % of the power changes don't incur
    /// migrations" statistic. A step counts as a power change when the
    /// power fraction moved by more than `min_delta` from the previous
    /// step.
    pub fn quiet_change_fraction(&self, min_delta: f64) -> f64 {
        let mut changes = 0usize;
        let mut quiet = 0usize;
        for w in self.steps.windows(2) {
            let delta = (w[1].power_frac - w[0].power_frac).abs();
            if delta > min_delta {
                changes += 1;
                if w[1].migrations_out == 0 && w[1].migrations_in == 0 {
                    quiet += 1;
                }
            }
        }
        if changes == 0 {
            1.0
        } else {
            quiet as f64 / changes as f64
        }
    }

    /// Mean utilization over the run.
    pub fn mean_utilization(&self) -> f64 {
        vb_stats::mean(
            &self
                .steps
                .iter()
                .map(|s| s.utilization)
                .collect::<Vec<f64>>(),
        )
    }
}

/// Run a cluster against `power` (normalized to [0, 1] of full cluster
/// power), after `warmup_steps` of full-power operation to fill the
/// cluster to its steady state.
pub fn simulate(
    cfg: ClusterConfig,
    power: &TimeSeries,
    workload_cfg: WorkloadConfig,
    warmup_steps: usize,
    seed: u64,
) -> SimOutput {
    let _span = vb_telemetry::span!("cluster.simulate");
    let mut cluster = Cluster::new(cfg);
    let mut workload = Workload::new(workload_cfg, seed);

    // Pre-fill with the steady-state resident population so the run
    // starts at the target utilization (heavy-tailed lifetimes would
    // otherwise need weeks of warm-up to accumulate).
    for (req, residual) in workload.steady_state_population() {
        cluster.place_migrated(req, residual as u64);
    }

    for _ in 0..warmup_steps {
        let arrivals = workload.step();
        cluster.step(1.0, &arrivals);
    }

    let steps: Vec<StepStats> = power
        .values
        .iter()
        .map(|&p| {
            let arrivals = workload.step();
            let stats = cluster.step(p, &arrivals);
            vb_telemetry::counter!("cluster.migrations_out").add(stats.migrations_out as u64);
            vb_telemetry::counter!("cluster.migrations_in").add(stats.migrations_in as u64);
            vb_telemetry::float_counter!("cluster.out_gb").add(stats.out_gb);
            vb_telemetry::float_counter!("cluster.in_gb").add(stats.in_gb);
            if stats.migrations_out > 0 || stats.hibernated > 0 {
                // The power budget could not host the resident
                // population: a genuine power deficit.
                vb_telemetry::counter!("cluster.power_deficit_steps").inc();
            }
            vb_telemetry::gauge!("cluster.utilization").set(stats.utilization);
            vb_telemetry::histogram!("cluster.step_out_gb").observe(stats.out_gb);
            stats
        })
        .collect();
    SimOutput { steps }
}

/// Convenience: the paper's exact setup — a ≈700-server site at 70 %
/// utilization with the workload rate sized to the power the site
/// actually has on average. Sizing demand to *mean* available power
/// (rather than nameplate capacity) keeps the site balanced: the
/// pending queue forms only during genuine power dips, so small power
/// rises pass without migrations — the ">80 % of power changes don't
/// incur migrations" regime of §3.
pub fn simulate_paper_site(power: &TimeSeries, seed: u64) -> SimOutput {
    let cfg = ClusterConfig::default();
    let mean_power = vb_stats::mean(&power.values);
    let mean_powered_cores = (cfg.total_cores() as f64 * mean_power) as u32;
    let workload = WorkloadConfig::for_cluster(mean_powered_cores.max(1), cfg.target_util);
    // Two simulated days of warm-up on top of the steady-state pre-fill.
    simulate(cfg, power, workload, 2 * vb_trace::STEPS_PER_DAY, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_power(frac: f64, steps: usize) -> TimeSeries {
        TimeSeries::new(900, vec![frac; steps])
    }

    fn small_cfg() -> ClusterConfig {
        // Paper-shaped servers (40 cores — every workload shape fits),
        // scaled down to 20 servers for fast tests.
        ClusterConfig {
            n_servers: 20,
            cores_per_server: 40,
            mem_per_server_gb: 512.0,
            target_util: 0.7,
        }
    }

    fn small_workload(cfg: &ClusterConfig) -> WorkloadConfig {
        WorkloadConfig::for_cluster(cfg.total_cores(), cfg.target_util)
    }

    #[test]
    fn steady_full_power_produces_no_migrations() {
        let cfg = small_cfg();
        let wl = small_workload(&cfg);
        let out = simulate(cfg, &flat_power(1.0, 100), wl, 50, 1);
        let total_out: f64 = out.out_gb().iter().sum();
        assert_eq!(total_out, 0.0, "no power variation, no migration");
        assert_eq!(out.quiet_change_fraction(0.01), 1.0);
    }

    #[test]
    fn warmed_cluster_sits_near_the_admission_target() {
        let cfg = small_cfg();
        let wl = small_workload(&cfg);
        let out = simulate(cfg, &flat_power(1.0, 200), wl, 192, 2);
        let util = out.mean_utilization();
        assert!(
            (0.58..=0.72).contains(&util),
            "steady-state utilization {util}"
        );
    }

    #[test]
    fn minor_power_dips_are_absorbed_by_unallocated_cores() {
        // Utilization ~0.7; power dipping to 0.8 leaves headroom.
        let cfg = small_cfg();
        let wl = small_workload(&cfg);
        let mut values = vec![1.0; 50];
        values.extend(vec![0.8; 50]);
        let power = TimeSeries::new(900, values);
        let out = simulate(cfg, &power, wl, 400, 3);
        let total_out: f64 = out.out_gb().iter().sum();
        assert_eq!(total_out, 0.0, "dip to 80% absorbed at 70% utilization");
    }

    #[test]
    fn deep_power_collapse_forces_out_migrations_then_in() {
        let cfg = small_cfg();
        let wl = small_workload(&cfg);
        let mut values = vec![1.0; 30];
        values.extend(vec![0.1; 20]); // collapse
        values.extend(vec![1.0; 30]); // recovery
        let power = TimeSeries::new(900, values);
        let out = simulate(cfg, &power, wl, 400, 4);
        let total_out: f64 = out.out_gb().iter().sum();
        let total_in: f64 = out.in_gb().iter().sum();
        assert!(total_out > 0.0, "collapse must evict stable VMs");
        assert!(total_in > 0.0, "recovery must launch pending VMs");
        // The spike should be at the collapse step.
        let peak_step = out
            .steps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.out_gb.partial_cmp(&b.1.out_gb).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak_step, 30, "out spike at the collapse instant");
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = small_cfg();
        let wl = small_workload(&cfg);
        let power = flat_power(0.5, 50);
        let a = simulate(cfg.clone(), &power, wl.clone(), 20, 7);
        let b = simulate(cfg, &power, wl, 20, 7);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn quiet_change_fraction_counts_only_changes() {
        let steps = vec![
            StepStats {
                power_frac: 1.0,
                ..StepStats::default()
            },
            StepStats {
                power_frac: 0.5,
                migrations_out: 1,
                ..StepStats::default()
            },
            StepStats {
                power_frac: 0.5,
                ..StepStats::default()
            },
            StepStats {
                power_frac: 0.9,
                ..StepStats::default()
            },
        ];
        let out = SimOutput { steps };
        // Two changes (1.0->0.5 with migration, 0.5->0.9 without).
        assert!((out.quiet_change_fraction(0.01) - 0.5).abs() < 1e-9);
    }
}
