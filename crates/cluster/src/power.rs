//! Server power model and energy accounting.
//!
//! §4 of the paper points at the mechanisms a VB site uses to track its
//! power budget — "frequency scaling, powering down cores/caches/memory
//! units" (RAPL-style capping) — and §5 argues the migration energy VB
//! adds is "negligible compared to up to 50 % energy loss in power
//! transmission". This module quantifies both: it maps the cluster
//! simulator's per-step core counts to watts, integrates energy over a
//! run, and reports how much of the farm's energy the site actually used
//! versus left unharvested.

use crate::cluster::StepStats;
use serde::{Deserialize, Serialize};

/// A linear server power model (idle/active per core + base).
///
/// Defaults approximate a dual-socket 40-core server: ~150 W platform
/// base (fans, disks, NIC), ~2.5 W per powered-but-idle core, and ~7.5 W
/// of additional draw per busy core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Platform base draw per server with any core powered, W.
    pub server_base_w: f64,
    /// Draw per powered core (idle), W.
    pub idle_w_per_core: f64,
    /// Additional draw per allocated (busy) core, W.
    pub active_w_per_core: f64,
    /// Cores per server (for apportioning the base draw).
    pub cores_per_server: u32,
}

impl Default for PowerModel {
    fn default() -> PowerModel {
        PowerModel {
            server_base_w: 150.0,
            idle_w_per_core: 2.5,
            active_w_per_core: 7.5,
            cores_per_server: 40,
        }
    }
}

impl PowerModel {
    /// Site draw in MW for a given number of powered and busy cores.
    /// Powered-down cores (and fully dark servers) draw nothing — the
    /// §3 "power down unallocated cores" mechanism.
    pub fn draw_mw(&self, powered_cores: u32, busy_cores: u32) -> f64 {
        let busy = busy_cores.min(powered_cores);
        // Base draw scales with the number of servers that have any core
        // powered; approximate by ceiling division.
        let servers_on = powered_cores.div_ceil(self.cores_per_server.max(1));
        let watts = servers_on as f64 * self.server_base_w
            + powered_cores as f64 * self.idle_w_per_core
            + busy as f64 * self.active_w_per_core;
        watts / 1e6
    }

    /// Full-cluster draw at nameplate (everything powered and busy), MW.
    pub fn max_draw_mw(&self, total_cores: u32) -> f64 {
        self.draw_mw(total_cores, total_cores)
    }
}

/// Energy accounting over one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy the site's power budget made available, MWh.
    pub available_mwh: f64,
    /// Energy actually drawn by powered/busy cores, MWh.
    pub used_mwh: f64,
    /// Energy available but not drawn (unharvested renewable), MWh.
    pub unused_mwh: f64,
    /// used / available, in [0, 1].
    pub utilization: f64,
}

/// Integrate a run's energy picture. The site's available power per step
/// is `power_frac × max_draw`; the drawn power follows the allocated
/// cores (busy) and budgeted cores (powered).
pub fn energy_report(
    model: &PowerModel,
    steps: &[StepStats],
    total_cores: u32,
    interval_secs: f64,
) -> EnergyReport {
    let hours = interval_secs / 3_600.0;
    let max_draw = model.max_draw_mw(total_cores);
    let mut available = 0.0;
    let mut used = 0.0;
    for s in steps {
        available += s.power_frac.clamp(0.0, 1.0) * max_draw * hours;
        // Powered cores = what the budget allows, but never more than
        // needed: idle unallocated cores are powered down immediately.
        let powered = s.allocated_cores.min(s.budget_cores);
        used += model.draw_mw(powered, s.allocated_cores) * hours;
    }
    EnergyReport {
        available_mwh: available,
        used_mwh: used,
        unused_mwh: (available - used).max(0.0),
        utilization: if available > 0.0 {
            (used / available).min(1.0)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_monotone_in_cores() {
        let m = PowerModel::default();
        assert_eq!(m.draw_mw(0, 0), 0.0, "dark site draws nothing");
        let idle = m.draw_mw(1_000, 0);
        let half = m.draw_mw(1_000, 500);
        let busy = m.draw_mw(1_000, 1_000);
        assert!(idle < half && half < busy);
    }

    #[test]
    fn busy_cores_never_exceed_powered() {
        let m = PowerModel::default();
        assert_eq!(m.draw_mw(100, 1_000), m.draw_mw(100, 100));
    }

    #[test]
    fn paper_scale_site_draws_single_digit_mw() {
        // 700 servers × 40 cores at full blast: representative of the
        // small edge DCs the paper pairs with 400 MW farms.
        let m = PowerModel::default();
        let mw = m.max_draw_mw(28_000);
        assert!((0.1..10.0).contains(&mw), "draw {mw} MW");
    }

    #[test]
    fn energy_report_balances() {
        let m = PowerModel::default();
        let steps = vec![
            StepStats {
                power_frac: 1.0,
                budget_cores: 28_000,
                allocated_cores: 14_000,
                ..StepStats::default()
            },
            StepStats {
                power_frac: 0.5,
                budget_cores: 14_000,
                allocated_cores: 14_000,
                ..StepStats::default()
            },
        ];
        let r = energy_report(&m, &steps, 28_000, 900.0);
        assert!(r.available_mwh > 0.0);
        assert!(r.used_mwh > 0.0);
        assert!((r.available_mwh - r.used_mwh - r.unused_mwh).abs() < 1e-9);
        assert!((0.0..=1.0).contains(&r.utilization));
    }

    #[test]
    fn zero_power_run_reports_zero_utilization() {
        let m = PowerModel::default();
        let steps = vec![StepStats::default()];
        let r = energy_report(&m, &steps, 28_000, 900.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.used_mwh, 0.0);
    }
}
