//! Property tests for the cluster simulator: resource-accounting
//! invariants must hold for arbitrary power/arrival sequences.

use proptest::prelude::*;
use vb_cluster::{Cluster, ClusterConfig, VmRequest};

fn small_cfg() -> ClusterConfig {
    ClusterConfig {
        n_servers: 10,
        cores_per_server: 40,
        mem_per_server_gb: 512.0,
        target_util: 0.7,
    }
}

#[derive(Debug, Clone)]
enum Op {
    Step {
        power: f64,
        arrivals: Vec<VmRequest>,
    },
}

fn arb_request() -> impl Strategy<Value = VmRequest> {
    (1u32..=32, 1u32..=200, proptest::bool::ANY).prop_map(|(cores, life, stable)| {
        if stable {
            VmRequest::stable(cores, cores as f64 * 4.0, life)
        } else {
            VmRequest::degradable(cores, cores as f64 * 4.0, life)
        }
    })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0.0..=1.0f64, proptest::collection::vec(arb_request(), 0..6))
            .prop_map(|(power, arrivals)| Op::Step { power, arrivals }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cluster_invariants_hold_for_any_sequence(ops in arb_ops()) {
        let cfg = small_cfg();
        let total_cores = cfg.total_cores();
        let mut cluster = Cluster::new(cfg);
        let mut prev_step = 0;

        for op in &ops {
            let Op::Step { power, arrivals } = op;
            let stats = cluster.step(*power, arrivals);

            // Time advances monotonically.
            prop_assert!(stats.step >= prev_step);
            prev_step = stats.step + 1;

            // Power budget bounds the allocation.
            prop_assert!(stats.allocated_cores <= stats.budget_cores,
                "allocated {} > budget {}", stats.allocated_cores, stats.budget_cores);
            prop_assert!(stats.budget_cores <= total_cores);
            prop_assert!((0.0..=1.0).contains(&stats.utilization));

            // Traffic accounting is non-negative and consistent with
            // migration counts.
            prop_assert!(stats.out_gb >= 0.0 && stats.in_gb >= 0.0);
            prop_assert!((stats.migrations_out == 0) == (stats.out_gb == 0.0));
            prop_assert!((stats.migrations_in == 0) == (stats.in_gb == 0.0));

            // Arrivals are either admitted or queued (or dropped as
            // unhostable), never duplicated.
            prop_assert!(stats.admitted + stats.queued <= arrivals.len());
        }
    }

    #[test]
    fn full_power_steady_state_never_migrates(reqs in proptest::collection::vec(arb_request(), 1..30)) {
        let mut cluster = Cluster::new(small_cfg());
        let mut total_out = 0.0;
        for chunk in reqs.chunks(3) {
            let stats = cluster.step(1.0, chunk);
            total_out += stats.out_gb;
        }
        prop_assert_eq!(total_out, 0.0, "no power dip, no eviction");
    }

    #[test]
    fn zero_power_leaves_nothing_running(reqs in proptest::collection::vec(arb_request(), 1..20)) {
        let mut cluster = Cluster::new(small_cfg());
        cluster.step(1.0, &reqs);
        let stats = cluster.step(0.0, &[]);
        prop_assert_eq!(stats.allocated_cores, 0);
        prop_assert_eq!(stats.budget_cores, 0);
        prop_assert_eq!(cluster.running_vms(), 0);
    }

    #[test]
    fn recovery_restores_capacity_use(power_dip in 0.0..0.5f64) {
        let mut cluster = Cluster::new(small_cfg());
        // Fill with long-lived stable VMs.
        let reqs: Vec<VmRequest> = (0..20).map(|_| VmRequest::stable(8, 32.0, 500)).collect();
        cluster.step(1.0, &reqs);
        let before = cluster.allocated_cores();
        prop_assert!(before > 0);
        // Dip and recover.
        cluster.step(power_dip, &[]);
        let after_dip = cluster.allocated_cores();
        prop_assert!(after_dip <= before);
        let recovered = cluster.step(1.0, &[]);
        // Queued VMs relaunch into the restored budget (as much as the
        // admission cap permits).
        prop_assert!(recovered.allocated_cores >= after_dip as u64 as u32);
    }

    #[test]
    fn workload_and_prefill_respect_shapes(seed in 0u64..30) {
        use vb_cluster::{Workload, WorkloadConfig};
        let cfg = WorkloadConfig::for_cluster(4_000, 0.7);
        let mut w = Workload::new(cfg.clone(), seed);
        for (req, residual) in w.steady_state_population() {
            prop_assert!(req.cores >= 1 && req.cores <= 32);
            prop_assert!(residual >= 1 && residual <= req.lifetime_steps);
            prop_assert!(req.lifetime_steps <= cfg.max_lifetime_steps);
        }
    }
}
