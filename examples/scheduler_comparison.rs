//! Scheduler comparison: the four §3.1 policies head-to-head on one
//! multi-VB group — a compact version of the Table 1 experiment with a
//! WAN-impact readout.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```
//!
//! Set `VB_REPORT_DIR=some/dir` to also write one telemetry JSONL run
//! report per policy (see `vb_telemetry::RunReport`).

use vb_net::{LinkSimulator, WanModel};
use vb_sched::{GreedyPolicy, GroupSim, GroupSimConfig, MipConfig, MipPolicy, Policy};
use vb_stats::report::{thousands, Table};
use vb_trace::Catalog;

fn main() {
    let catalog = Catalog::europe(42);
    let names = ["NO-solar", "UK-wind", "PT-wind"];
    let cfg = GroupSimConfig::default();

    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(GreedyPolicy::new()),
        Box::new(GreedyPolicy::most_headroom()),
        Box::new(MipPolicy::new(MipConfig::mip_24h())),
        Box::new(MipPolicy::new(MipConfig::mip())),
        Box::new(MipPolicy::new(MipConfig::mip_peak())),
    ];

    println!(
        "one week across {names:?} ({} cores/site, demand ~70% of mean power)\n",
        cfg.cores_per_site
    );
    let mut table = Table::new(&[
        "Policy",
        "Total (GB)",
        "p99 (GB)",
        "Peak (GB)",
        "Std",
        "Quiet steps",
        "Moves",
        "Unavail (app-steps)",
    ]);
    let wan = WanModel::default();
    let mut wan_rows = Vec::new();
    let report_dir = std::env::var("VB_REPORT_DIR")
        .ok()
        .filter(|d| !d.is_empty());
    for p in policies.iter_mut() {
        vb_telemetry::reset();
        let s = GroupSim::new(&catalog, &names, cfg.clone())
            .expect("comparison sites must exist in the catalog")
            .run(p.as_mut());
        if let Some(dir) = &report_dir {
            let report = vb_telemetry::RunReport::capture(&s.policy);
            let path = format!("{dir}/{}.jsonl", s.policy);
            if std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, report.to_jsonl()))
                .is_ok()
            {
                eprintln!("wrote telemetry report {path}");
            }
        }
        table.row(&[
            s.policy.clone(),
            thousands(s.total_gb),
            thousands(s.p99_gb),
            thousands(s.peak_gb),
            thousands(s.std_gb),
            format!("{:.0}%", 100.0 * s.zero_fraction),
            s.preemptive_moves.to_string(),
            s.unavailable_app_steps.to_string(),
        ]);
        // Drain this policy's transfer series through a 200 Gbps link.
        let mut link = LinkSimulator::new(wan.site_link_gbps, 900.0);
        let link_stats = link.run(&s.per_step_gb);
        let worst_delay = link_stats
            .iter()
            .map(|l| l.worst_delay_intervals)
            .max()
            .unwrap_or(0);
        let busy = wan.busy_fraction(&s.per_step_gb, 900.0);
        wan_rows.push((s.policy.clone(), busy, worst_delay));
    }
    print!("{}", table.render());

    println!("\nWAN impact at {} Gbps per site:", wan.site_link_gbps);
    for (policy, busy, delay) in wan_rows {
        println!(
            "  {policy:<16} link busy {:>4.1}% of the time, worst transfer delay {delay} interval(s)",
            100.0 * busy
        );
    }
}
