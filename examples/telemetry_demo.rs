//! Telemetry demo: run the same multi-VB group simulation under two
//! policies and compare what the observability layer recorded — solver
//! effort, planning latency, WAN traffic breakdown, and the structured
//! JSONL run report.
//!
//! ```sh
//! cargo run --release --example telemetry_demo
//! ```
//!
//! Build with `--no-default-features` to see the same program run with
//! telemetry compiled out (both reports come back empty).

use virtual_battery::vb_sched::{GreedyPolicy, GroupSim, GroupSimConfig, MipConfig, MipPolicy};
use virtual_battery::vb_telemetry::{self, RunReport};
use virtual_battery::vb_trace::Catalog;

const SITES: [&str; 3] = ["NO-solar", "UK-wind", "PT-wind"];

fn cfg() -> GroupSimConfig {
    GroupSimConfig {
        cores_per_site: 2_000,
        days: 3,
        max_movable: 6,
        seed: 42,
        ..GroupSimConfig::default()
    }
}

/// Run one policy inside a fresh telemetry scope and capture its report.
fn run_policy(catalog: &Catalog, policy: &mut dyn virtual_battery::vb_sched::Policy) -> RunReport {
    vb_telemetry::reset();
    let summary = GroupSim::new(catalog, &SITES, cfg())
        .expect("demo sites must exist in the catalog")
        .run(policy);
    println!(
        "{:<10} total {:>8.0} GB   peak {:>7.0} GB   preemptive moves {:>3}",
        summary.policy, summary.total_gb, summary.peak_gb, summary.preemptive_moves
    );
    RunReport::capture(&summary.policy)
}

fn metric(report: &RunReport, name: &str) -> String {
    if let Some(v) = report.snapshot.counter(name) {
        return format!("{v}");
    }
    if let Some(v) = report.snapshot.float_counter(name) {
        return format!("{v:.0}");
    }
    "-".into()
}

fn span_ms(report: &RunReport, name: &str) -> String {
    match report.snapshot.span(name) {
        Some(s) => format!("{:.1}ms ×{}", s.total_ns as f64 / 1e6, s.count),
        None => "-".into(),
    }
}

fn main() {
    let catalog = Catalog::europe(42);
    println!(
        "== group simulation: {} over {} days ==",
        SITES.join(" + "),
        cfg().days
    );

    let greedy = run_policy(&catalog, &mut GreedyPolicy::new());
    let mip = run_policy(&catalog, &mut MipPolicy::new(MipConfig::mip_peak()));

    if greedy.snapshot.is_empty() {
        println!("\n(telemetry compiled out — rebuild without --no-default-features for the full report)");
        return;
    }

    println!("\n== what the telemetry layer saw ==");
    println!("{:<34} {:>16} {:>16}", "metric", "Greedy", "MIP-peak");
    for name in [
        "sched.transfers",
        "sched.rehost_gb",
        "sched.relaunch_gb",
        "sched.move_gb",
        "sched.moves_planned",
        "sched.moves_executed",
        "sched.drain_moves",
        "solver.lp_solves",
        "solver.pivots",
        "solver.warm_start_hits",
        "solver.mip_nodes_expanded",
        "solver.mip_nodes_pruned",
    ] {
        println!(
            "{name:<34} {:>16} {:>16}",
            metric(&greedy, name),
            metric(&mip, name)
        );
    }
    println!(
        "\n{:<34} {:>16} {:>16}",
        "span (total × count)", "Greedy", "MIP-peak"
    );
    for name in [
        "sched.group_run",
        "sched.sim_step",
        "sched.greedy_plan",
        "sched.mip_plan",
    ] {
        println!(
            "{name:<34} {:>16} {:>16}",
            span_ms(&greedy, name),
            span_ms(&mip, name)
        );
    }

    let jsonl = mip.to_jsonl();
    println!(
        "\nMIP-peak run report: {} JSONL lines ({} events + summary); first line:",
        jsonl.lines().count(),
        mip.events.len()
    );
    println!("{}", jsonl.lines().next().unwrap_or_default());
}
