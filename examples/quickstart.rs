//! Quickstart: build a Virtual Battery, look at its energy, aggregate a
//! multi-VB group, and run the co-scheduler over a week.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vb_core::energy::WINDOW_3_DAYS;
use vb_core::{MultiVb, VirtualBattery};
use vb_sched::{GreedyPolicy, GroupSim, GroupSimConfig, MipConfig, MipPolicy};
use vb_trace::Catalog;

fn main() {
    // A catalog of synthetic European renewable sites sharing one
    // weather system (seeded -> fully reproducible).
    let catalog = Catalog::europe(42);

    // 1. One Virtual Battery: a renewable farm + co-located data center.
    let vb = VirtualBattery::from_catalog(&catalog, "UK-wind", 120, 7);
    let stats = vb.summary();
    println!("UK-wind, one week:");
    println!(
        "  mean output     : {:>5.1}% of nameplate",
        100.0 * stats.mean
    );
    println!("  variability cov : {:>5.2}", vb.cov());
    let split = vb.breakdown(WINDOW_3_DAYS);
    println!(
        "  energy split    : {:.0} MWh stable / {:.0} MWh variable",
        split.stable_mwh, split.variable_mwh
    );

    // 2. A multi-VB group: complementary sites flatten the variability.
    let group = MultiVb::from_catalog(&catalog, &["NO-solar", "UK-wind", "PT-wind"], 120, 7);
    println!("\nNO-solar + UK-wind + PT-wind:");
    println!(
        "  combined cov    : {:.2} ({:.1}x steadier than the steadiest member)",
        group.cov(),
        group.cov_improvement()
    );
    let split = group.breakdown(WINDOW_3_DAYS);
    println!(
        "  stable fraction : {:.0}% (vs {:.0}% for UK-wind alone)",
        100.0 * split.stable_fraction(),
        100.0 * vb.breakdown(WINDOW_3_DAYS).stable_fraction()
    );

    // 3. Schedule applications across the group for a week: the greedy
    //    baseline vs the forecast-driven MIP co-scheduler.
    let cfg = GroupSimConfig::default();
    let names = ["NO-solar", "UK-wind", "PT-wind"];
    println!("\nscheduling one week of applications across the group…");
    let greedy = GroupSim::new(&catalog, &names, cfg.clone())
        .expect("quickstart sites must exist in the catalog")
        .run(&mut GreedyPolicy::new());
    let mip = GroupSim::new(&catalog, &names, cfg)
        .expect("quickstart sites must exist in the catalog")
        .run(&mut MipPolicy::new(MipConfig::mip()));
    for s in [&greedy, &mip] {
        println!(
            "  {:<8}: {:>7.0} GB migrated, peak {:>6.0} GB/15min, {:.0}% quiet intervals",
            s.policy,
            s.total_gb,
            s.peak_gb,
            100.0 * s.zero_fraction
        );
    }
    println!(
        "\nthe power- & network-aware MIP moved {:.0}% less data than greedy.",
        100.0 * (1.0 - mip.total_gb / greedy.total_gb)
    );
}
