//! Migration planner: the §3 single-site experiment as a what-if tool.
//! Run a ≈700-server renewable-powered site against its power trace and
//! size the WAN link that keeps migration bursts drainable.
//!
//! ```sh
//! cargo run --release --example migration_planner [site-name] [days]
//! ```

use vb_cluster::simulate_paper_site;
use vb_net::{LinkSimulator, WanModel};
use vb_stats::{Cdf, Summary};
use vb_trace::Catalog;

fn main() {
    let mut args = std::env::args().skip(1);
    let site = args.next().unwrap_or_else(|| "BE-wind".to_string());
    let days: u32 = args.next().and_then(|d| d.parse().ok()).unwrap_or(30);

    let catalog = Catalog::europe(42);
    if catalog.get(&site).is_none() {
        eprintln!("unknown site {site}");
        std::process::exit(1);
    }
    println!("simulating {days} days at {site} (700 servers, 28 000 cores, 70% admission target)…");
    let power = catalog.trace(&site, 60, days);
    let out = simulate_paper_site(&power, 42);

    let outs = out.out_gb();
    let ins = out.in_gb();
    let all: Vec<f64> = outs.iter().zip(&ins).map(|(a, b)| a + b).collect();
    let total: f64 = all.iter().sum();
    println!(
        "\nmigration traffic: {:.1} TB total ({:.1} TB out, {:.1} TB in)",
        total / 1_000.0,
        outs.iter().sum::<f64>() / 1_000.0,
        ins.iter().sum::<f64>() / 1_000.0
    );
    println!(
        "quiet power changes: {:.0}% caused no migration",
        100.0 * out.quiet_change_fraction(0.002)
    );
    let nonzero = Cdf::of_nonzero(&all);
    if !nonzero.is_empty() {
        let s = Summary::of(nonzero.sorted_values());
        println!(
            "burst sizes (non-zero intervals): p50 {:.0} GB, p99 {:.0} GB, max {:.0} GB",
            s.p50, s.p99, s.max
        );
    }

    // Size the WAN link: find the smallest capacity whose worst transfer
    // delay stays within one 15-minute interval.
    println!("\nWAN link sizing:");
    println!("Gbps   busy%  backlog-max(GB)  worst-delay(intervals)");
    for gbps in [50.0, 100.0, 200.0, 400.0] {
        let wan = WanModel {
            site_link_gbps: gbps,
            ..WanModel::default()
        };
        let mut link = LinkSimulator::new(gbps, 900.0);
        let stats = link.run(&all);
        let max_backlog = stats.iter().map(|s| s.backlog_gb).fold(0.0, f64::max);
        let worst_delay = stats
            .iter()
            .map(|s| s.worst_delay_intervals)
            .max()
            .unwrap_or(0);
        println!(
            "{gbps:>4.0}   {:>4.1}  {max_backlog:>15.0}  {worst_delay:>6}",
            100.0 * wan.busy_fraction(&all, 900.0)
        );
    }
    println!(
        "\n(the paper provisions 200 Gbps per site; §5 expects it busy only 2-4% of the time)"
    );
}
