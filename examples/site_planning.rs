//! Site planning: given a catalog of candidate renewable sites, find the
//! multi-VB groups worth building — the §2.3 / Fig 6 "subgraph
//! identification" workflow, plus the grid-purchase analysis.
//!
//! ```sh
//! cargo run --release --example site_planning
//! ```

use vb_core::energy::WINDOW_3_DAYS;
use vb_core::{optimize_purchase, search_pairs, MultiVb};
use vb_net::{k_cliques, rank_cliques_by_cov, SiteGraph};
use vb_stats::TimeSeries;
use vb_trace::Catalog;

fn main() {
    let catalog = Catalog::europe(7);
    let start_day = 90;
    let days = 3;

    // --- Which pairs complement each other? (§2.3's sweep) ---
    let (mut pairs, stats) = search_pairs(&catalog, start_day, days, 50.0);
    pairs.sort_by(|a, b| b.improvement.partial_cmp(&a.improvement).expect("finite"));
    println!(
        "pair sweep: {} pairs within 50 ms; {:.0}% improve cov by >50%",
        stats.pairs,
        100.0 * stats.improved_50pct_fraction
    );
    println!("top 5 complementary pairs:");
    for p in pairs.iter().take(5) {
        println!(
            "  {:<10} + {:<10}  cov {:.2} -> {:.2}  ({:.1}x, {:.0} ms apart)",
            p.a, p.b, p.worst_single_cov, p.combined_cov, p.improvement, p.rtt_ms
        );
    }

    // --- The best k-cliques of the 50 ms site graph (Fig 6 step 1) ---
    let graph = SiteGraph::with_default_threshold(catalog.sites().to_vec());
    let traces: Vec<TimeSeries> = catalog
        .sites()
        .iter()
        .map(|s| vb_trace::generate_in(s, start_day, days, catalog.field()).scale(s.capacity_mw))
        .collect();
    println!("\nbest multi-VB groups per clique size:");
    for k in 2..=5 {
        let ranked = rank_cliques_by_cov(&graph, &k_cliques(&graph, k), &traces);
        if let Some(best) = ranked.first() {
            let names: Vec<&str> = best
                .nodes
                .iter()
                .map(|&i| catalog.sites()[i].name.as_str())
                .collect();
            println!(
                "  k={k}: {:<45} cov {:.2}, diameter {:.0} ms",
                names.join(" + "),
                best.cov,
                best.diameter_ms
            );
        }
    }

    // --- How much would a small grid purchase stabilize the best trio? ---
    let ranked = rank_cliques_by_cov(&graph, &k_cliques(&graph, 3), &traces);
    let best = &ranked[0];
    let names: Vec<&str> = best
        .nodes
        .iter()
        .map(|&i| catalog.sites()[i].name.as_str())
        .collect();
    let group = MultiVb::from_catalog(&catalog, &names, start_day, days);
    let combined = group.combined();
    let before = group.breakdown(WINDOW_3_DAYS);
    println!(
        "\nbest trio {}: {:.0} MWh stable / {:.0} MWh variable",
        names.join("+"),
        before.stable_mwh,
        before.variable_mwh
    );
    for budget_pct in [5.0, 10.0, 20.0] {
        let budget = combined.energy() * budget_pct / 100.0;
        let plan = optimize_purchase(&combined, combined.len(), budget);
        println!(
            "  buy {:>5.0} MWh ({budget_pct:>2.0}% of generation) -> +{:>6.0} MWh stable (leverage {:.1}x)",
            plan.purchased_mwh,
            plan.stable_gain_mwh(),
            plan.leverage()
        );
    }
}
