//! Forecast explorer: how predictable is renewable power, and what does
//! the co-scheduler actually see? Regenerates the Fig 5 numbers at any
//! site and shows the composite forecast (3 h / day / week products) a
//! planning epoch would use.
//!
//! ```sh
//! cargo run --release --example forecast_explorer [site-name]
//! ```

use vb_stats::{mape_above, Summary};
use vb_trace::{forecast_for, Catalog, Horizon};

fn main() {
    let site_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BE-wind".to_string());
    let catalog = Catalog::europe(42);
    let Some(site) = catalog.get(&site_name) else {
        eprintln!("unknown site {site_name}; available sites:");
        for s in catalog.sites() {
            eprintln!("  {} ({}, {:.1}N {:.1}E)", s.name, s.kind, s.lat, s.lon);
        }
        std::process::exit(1);
    };

    println!(
        "site {site_name} ({}, {:.1}N {:.1}E, {:.0} MW)\n",
        site.kind, site.lat, site.lon, site.capacity_mw
    );

    // Year-long forecast quality per horizon (Figure 5).
    let year = catalog.trace(&site_name, 0, 365);
    println!("forecast quality over one year (MAPE over samples >2% of capacity):");
    for h in Horizon::all() {
        let f = forecast_for(&year, site, h, catalog.field());
        println!(
            "  {:<12} MAPE {:>5.1}%",
            h.label(),
            mape_above(&year.values, &f.values, 0.02)
        );
    }

    // What a planning epoch sees: the composite forecast stitched from
    // the freshest product per lead time.
    let window = catalog.trace(&site_name, 150, 8);
    let f3 = forecast_for(&window, site, Horizon::Hours3, catalog.field());
    let fd = forecast_for(&window, site, Horizon::DayAhead, catalog.field());
    let fw = forecast_for(&window, site, Horizon::WeekAhead, catalog.field());
    println!("\ncomposite forecast from an epoch at hour 0 (3-hour means):");
    println!("lead(h)  actual  forecast  product");
    for b in 0..24 {
        let lo = b * 12;
        let hi = lo + 12;
        let (product, series) = if lo < 12 {
            ("3h-ahead", &f3)
        } else if lo < 96 {
            ("day-ahead", &fd)
        } else {
            ("week-ahead", &fw)
        };
        let actual = vb_stats::mean(&window.values[lo..hi]);
        let fc = vb_stats::mean(&series.values[lo..hi]);
        println!("{:>7}  {actual:>6.3}  {fc:>8.3}  {product}", b * 3);
    }

    // How sharp are the changes the scheduler must anticipate?
    let deltas: Vec<f64> = year.diff().iter().map(|d| d.abs()).collect();
    let s = Summary::of(&deltas);
    println!(
        "\n15-min power changes: median {:.3}, p99 {:.3} of capacity (sharp changes are the migration triggers, §3.1)",
        s.p50, s.p99
    );
}
