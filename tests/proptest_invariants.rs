//! Property-based invariants spanning the workspace's core data
//! structures: time-series algebra, energy decomposition, the purchase
//! optimizer, CDFs, and the WAN/link models.

use proptest::prelude::*;
use virtual_battery::vb_core::{decompose, optimize_purchase};
use virtual_battery::vb_net::LinkSimulator;
use virtual_battery::vb_stats::{Cdf, Summary, TimeSeries};

fn power_series() -> impl Strategy<Value = TimeSeries> {
    proptest::collection::vec(0.0..500.0f64, 4..96).prop_map(|v| TimeSeries::new(900, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- TimeSeries algebra ---

    #[test]
    fn energy_is_linear_in_scaling(ts in power_series(), k in 0.0..10.0f64) {
        let direct = ts.scale(k).energy();
        prop_assert!((direct - ts.energy() * k).abs() < 1e-6 * (1.0 + direct.abs()));
    }

    #[test]
    fn downsample_preserves_energy_for_divisible_lengths(ts in power_series()) {
        let n = ts.len() - ts.len() % 4;
        let trimmed = ts.slice(0, n);
        if n > 0 {
            let coarse = trimmed.downsample(4);
            prop_assert!((coarse.energy() - trimmed.energy()).abs() < 1e-6);
        }
    }

    #[test]
    fn upsample_then_downsample_is_identity(ts in power_series(), f in 1usize..5) {
        // Interval must be divisible by the factor for upsample.
        let ts = TimeSeries::new(900 * f as u64, ts.values);
        let round = ts.upsample(f).downsample(f);
        for (a, b) in ts.values.iter().zip(&round.values) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn window_min_is_a_lower_envelope(ts in power_series(), w in 1usize..20) {
        let mins = ts.window_min(w);
        for (i, &v) in ts.values.iter().enumerate() {
            let win = i / w;
            prop_assert!(mins.values[win] <= v + 1e-12);
        }
    }

    // --- Energy decomposition ---

    #[test]
    fn decomposition_conserves_energy(ts in power_series(), w in 1usize..30) {
        let b = decompose(&ts, w);
        prop_assert!((b.total_mwh() - ts.energy()).abs() < 1e-6);
        prop_assert!(b.stable_mwh >= -1e-12);
        prop_assert!(b.variable_mwh >= -1e-12);
        let f = b.stable_fraction() + b.variable_fraction();
        prop_assert!(f < 1.0 + 1e-9);
    }

    #[test]
    fn finer_windows_never_lose_stable_energy(ts in power_series()) {
        let coarse = decompose(&ts, ts.len().max(1)).stable_mwh;
        let fine = decompose(&ts, 2).stable_mwh;
        prop_assert!(fine >= coarse - 1e-9);
    }

    // --- Purchase optimizer ---

    #[test]
    fn purchase_respects_budget_and_improves_stable(
        ts in power_series(),
        budget in 0.0..2_000.0f64,
        w in 2usize..30,
    ) {
        let plan = optimize_purchase(&ts, w, budget);
        prop_assert!(plan.purchased_mwh <= budget + 1e-6);
        prop_assert!(plan.stable_after_mwh >= plan.stable_before_mwh - 1e-9);
        // The reported floors must dominate the window minima.
        let mins = ts.window_min(w);
        for (f, m) in plan.floor_mw.iter().zip(&mins.values) {
            prop_assert!(*f >= *m - 1e-9);
        }
        // Purchase per sample is exactly floor deficit.
        for (i, &p) in plan.purchased_mw.iter().enumerate() {
            prop_assert!(p >= -1e-12);
            let win = i / w;
            let expect = (plan.floor_mw[win] - ts.values[i]).max(0.0);
            prop_assert!((p - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn purchase_leverage_is_at_least_one_when_buying(ts in power_series(), w in 2usize..20) {
        let plan = optimize_purchase(&ts, w, 500.0);
        if plan.purchased_mwh > 1e-9 {
            // Raising the floor by delta gains at least window_len × delta
            // of stable energy while costing at most that much purchase.
            prop_assert!(plan.leverage() >= 1.0 - 1e-9, "leverage {}", plan.leverage());
        }
    }

    // --- CDFs and summaries ---

    #[test]
    fn cdf_quantiles_are_monotone_and_bracketed(
        values in proptest::collection::vec(0.0..100.0f64, 1..200),
    ) {
        let cdf = Cdf::of(&values);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let x = cdf.quantile(q);
            prop_assert!(x >= prev - 1e-12, "quantiles must be monotone");
            prop_assert!((min - 1e-12..=max + 1e-12).contains(&x));
            prev = x;
        }
        // The extremes are exact, and everything is at or below the max.
        prop_assert!((cdf.quantile(0.0) - min).abs() < 1e-12);
        prop_assert!((cdf.quantile(1.0) - max).abs() < 1e-12);
        prop_assert!((cdf.eval(max) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_orderings_hold(values in proptest::collection::vec(-50.0..50.0f64, 2..200)) {
        let s = Summary::of(&values);
        prop_assert!(s.min <= s.p25 + 1e-12);
        prop_assert!(s.p25 <= s.p50 + 1e-12);
        prop_assert!(s.p50 <= s.p75 + 1e-12);
        prop_assert!(s.p75 <= s.p99 + 1e-12);
        prop_assert!(s.p99 <= s.max + 1e-12);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
    }

    // --- Link simulator ---

    #[test]
    fn link_conserves_volume_and_respects_capacity(
        offered in proptest::collection::vec(0.0..50_000.0f64, 1..100),
        gbps in 1.0..500.0f64,
    ) {
        let mut link = LinkSimulator::new(gbps, 900.0);
        let stats = link.run(&offered);
        let drained: f64 = stats.iter().map(|s| s.drained_gb).sum();
        let total: f64 = offered.iter().sum();
        prop_assert!((drained + link.backlog_gb() - total).abs() < 1e-3);
        for s in &stats {
            prop_assert!(s.drained_gb <= link.capacity_gb() + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s.utilization));
            prop_assert!(s.backlog_gb >= -1e-9);
        }
    }
}

// --- Pinned regression cases ---
//
// These inputs were shrunk counterexamples recorded in
// `proptest_invariants.proptest-regressions` by upstream proptest. The
// offline proptest stand-in does not read that file, so the cases are
// pinned explicitly here.

#[test]
fn regression_cdf_quantiles_with_leading_zeros() {
    // Majority-zero sample: quantile interpolation must stay monotone
    // and bracketed when most of the mass sits at the minimum.
    let values = [0.0, 0.0, 0.0, 0.0, 74.85499421882521, 74.26177988174805];
    let cdf = Cdf::of(&values);
    let mut prev = f64::NEG_INFINITY;
    for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let x = cdf.quantile(q);
        assert!(x >= prev - 1e-12, "quantiles must be monotone");
        assert!((-1e-12..=74.85499421882521 + 1e-12).contains(&x));
        prev = x;
    }
    assert!((cdf.quantile(0.0) - 0.0).abs() < 1e-12);
    assert!((cdf.quantile(1.0) - 74.85499421882521).abs() < 1e-12);
    assert!((cdf.eval(74.85499421882521) - 1.0).abs() < 1e-12);
}

#[test]
fn regression_window_larger_than_series() {
    // Window length exceeding the series length: the single partial
    // window must still lower-bound every sample, and decomposition must
    // still conserve energy.
    let ts = TimeSeries::new(
        900,
        vec![
            95.21315253770746,
            120.98829288615414,
            230.79385986162924,
            244.94192233598193,
        ],
    );
    let w = 8;
    let mins = ts.window_min(w);
    for (i, &v) in ts.values.iter().enumerate() {
        assert!(mins.values[i / w] <= v + 1e-12);
    }
    let b = decompose(&ts, w);
    assert!((b.total_mwh() - ts.energy()).abs() < 1e-6);
    assert!(b.stable_mwh >= -1e-12);
    assert!(b.variable_mwh >= -1e-12);
}
