//! Cross-crate integration tests: the full Virtual Battery pipeline from
//! synthetic weather to scheduled migrations, exercised through the
//! public APIs the examples use.

use virtual_battery::vb_core::energy::WINDOW_3_DAYS;
use virtual_battery::vb_core::{optimize_purchase, MultiVb, VirtualBattery};
use virtual_battery::vb_net::{k_cliques, rank_cliques_by_cov, SiteGraph, WanModel};
use virtual_battery::vb_sched::{
    select_group, GreedyPolicy, GroupSim, GroupSimConfig, MipConfig, MipPolicy, PipelineConfig,
    Policy,
};
use virtual_battery::vb_stats::TimeSeries;
use virtual_battery::vb_trace::Catalog;

const SEED: u64 = 42;

#[test]
fn pipeline_selects_a_low_latency_complementary_group() {
    // Fig 6 steps 1-2 end to end: the selected group must be a real
    // clique of the 50 ms graph and steadier than its members.
    let catalog = Catalog::europe(SEED);
    let cfg = PipelineConfig::default();
    let names = select_group(&catalog, &cfg);
    assert_eq!(names.len(), cfg.k);

    let graph = SiteGraph::with_default_threshold(catalog.sites().to_vec());
    let ids: Vec<usize> = names
        .iter()
        .map(|n| {
            catalog
                .sites()
                .iter()
                .position(|s| &s.name == n)
                .expect("site exists")
        })
        .collect();
    assert!(graph.is_clique(&ids), "selected group must be a clique");
    assert!(graph.diameter_ms(&ids) < 50.0);

    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let group = MultiVb::from_catalog(&catalog, &refs, cfg.start_day, cfg.window_days);
    assert!(group.cov_improvement() > 1.0, "aggregation must help");
}

#[test]
fn scheduling_and_energy_views_agree_on_the_same_world() {
    // The VirtualBattery energy view and the GroupSim runtime must see
    // the same generated power for the same site and window.
    let catalog = Catalog::europe(SEED);
    let vb = VirtualBattery::from_catalog(&catalog, "UK-wind", 120, 2);
    let cfg = GroupSimConfig {
        days: 2,
        ..GroupSimConfig::default()
    };
    let sim = GroupSim::new(&catalog, &["UK-wind"], cfg).unwrap();
    assert_eq!(sim.n_steps(), vb.normalized().len() as u64);
}

#[test]
fn policies_share_identical_worlds_and_differ_only_in_decisions() {
    let catalog = Catalog::europe(SEED);
    let names = ["UK-wind", "PT-wind"];
    let cfg = GroupSimConfig {
        days: 2,
        ..GroupSimConfig::default()
    };

    // Same policy twice: identical output (the world is deterministic).
    let a = GroupSim::new(&catalog, &names, cfg.clone())
        .unwrap()
        .run(&mut GreedyPolicy::new());
    let b = GroupSim::new(&catalog, &names, cfg.clone())
        .unwrap()
        .run(&mut GreedyPolicy::new());
    assert_eq!(a.per_step_gb, b.per_step_gb);

    // A different policy produces a different trajectory over the same
    // arrivals (if it never differed, the comparison would be vacuous).
    let m = GroupSim::new(&catalog, &names, cfg)
        .unwrap()
        .run(&mut MipPolicy::new(MipConfig::mip_24h()));
    assert_eq!(m.per_step_gb.len(), a.per_step_gb.len());
    assert_ne!(m.per_step_gb, a.per_step_gb);
}

#[test]
fn clique_ranking_is_consistent_with_multivb_cov() {
    // vb-net's clique scores and vb-core's MultiVb must compute the same
    // combined cov for the same group.
    let catalog = Catalog::europe(SEED);
    let graph = SiteGraph::with_default_threshold(catalog.sites().to_vec());
    let traces: Vec<TimeSeries> = catalog
        .sites()
        .iter()
        .map(|s| {
            virtual_battery::vb_trace::generate_in(s, 90, 3, catalog.field()).scale(s.capacity_mw)
        })
        .collect();
    let ranked = rank_cliques_by_cov(&graph, &k_cliques(&graph, 2), &traces);
    let best = &ranked[0];
    let sites: Vec<_> = best
        .nodes
        .iter()
        .map(|&i| catalog.sites()[i].clone())
        .collect();
    let member_traces: Vec<TimeSeries> = best.nodes.iter().map(|&i| traces[i].clone()).collect();
    let group = MultiVb::new(sites, member_traces);
    assert!((group.cov() - best.cov).abs() < 1e-9);
}

#[test]
fn purchase_composes_with_decomposition() {
    // After applying the purchase plan, re-decomposing the (generation +
    // purchase) series must reproduce the plan's stable_after energy.
    let catalog = Catalog::europe(SEED);
    let group = MultiVb::from_catalog(&catalog, &["NO-solar", "UK-wind"], 90, 3);
    let combined = group.combined();
    let plan = optimize_purchase(&combined, WINDOW_3_DAYS, 2_000.0);

    let patched = TimeSeries {
        start_secs: combined.start_secs,
        interval_secs: combined.interval_secs,
        values: combined
            .values
            .iter()
            .zip(&plan.purchased_mw)
            .map(|(p, b)| p + b)
            .collect(),
    };
    let after = virtual_battery::vb_core::decompose(&patched, WINDOW_3_DAYS);
    assert!(
        (after.stable_mwh - plan.stable_after_mwh).abs() < 1e-6,
        "decompose({}) vs plan ({})",
        after.stable_mwh,
        plan.stable_after_mwh
    );
}

#[test]
fn cluster_migration_fits_the_wan_model() {
    // §5's headroom argument end-to-end: simulate a week and check the
    // WAN busy time stays in single digits of percent.
    let catalog = Catalog::europe(SEED);
    let power = catalog.trace("BE-wind", 122, 7);
    let out = virtual_battery::vb_cluster::simulate_paper_site(&power, SEED);
    let all: Vec<f64> = out
        .out_gb()
        .iter()
        .zip(out.in_gb().iter())
        .map(|(a, b)| a + b)
        .collect();
    let wan = WanModel::default();
    let busy = wan.busy_fraction(&all, 900.0);
    assert!(busy < 0.10, "site link busy {busy}");
}

#[test]
fn mip_policy_solves_exactly_throughout_a_run() {
    let catalog = Catalog::europe(SEED);
    let cfg = GroupSimConfig {
        days: 2,
        ..GroupSimConfig::default()
    };
    let mut policy = MipPolicy::new(MipConfig::mip());
    let _ = GroupSim::new(&catalog, &["UK-wind", "PT-wind", "NO-solar"], cfg)
        .unwrap()
        .run(&mut policy);
    assert_eq!(policy.fallbacks_used(), 0, "no greedy fallbacks expected");
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate must expose the whole workspace.
    let _ = virtual_battery::vb_stats::mean(&[1.0, 2.0]);
    let _ = virtual_battery::vb_solver::Model::new(virtual_battery::vb_solver::Sense::Minimize);
    let catalog = virtual_battery::vb_trace::Catalog::europe(1);
    assert!(!catalog.is_empty());
    let _ = GreedyPolicy::new().name();
}
