//! Offline stand-in for `bytes`.
//!
//! Implements the surface `vb_trace::io` uses: [`Bytes`] (cheaply
//! cloneable shared view with a read cursor), [`BytesMut`] (growable
//! builder), and the little-endian accessors from [`Buf`] / [`BufMut`].
//! [`Bytes`] shares its backing storage via `Arc`, so `clone` and
//! [`Bytes::slice`] are O(1) as upstream guarantees.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Cursor-based reading of little-endian values (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Move the cursor forward by `cnt`.
    fn advance(&mut self, cnt: usize);

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_fixed(&mut raw);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_fixed(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    #[doc(hidden)]
    fn copy_fixed(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Appending little-endian values (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// Immutable shared byte view (subset of `bytes::Bytes`).
///
/// Reading through [`Buf`] advances an internal cursor without touching
/// the shared storage, mirroring upstream semantics.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty view.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Length of the (unconsumed) view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-view of `range` (relative to this view), sharing storage.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from_vec(s.to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.chunk() == other.chunk()
    }
}
impl Eq for Bytes {}

/// Growable byte builder (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable shared [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(20);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(-1.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 20);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 42);
        assert_eq!(bytes.get_f64_le(), -1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mid = bytes.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(bytes.len(), 10, "parent view unchanged");
    }

    #[test]
    fn bytesmut_is_mutable_through_index() {
        let bytes = Bytes::from(vec![1u8, 2, 3]);
        let mut m = BytesMut::from(&bytes[..]);
        m[0] ^= 0xff;
        let back = m.freeze();
        assert_eq!(back[0], 1 ^ 0xff);
        assert_eq!(bytes[0], 1, "original unaffected");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }
}
