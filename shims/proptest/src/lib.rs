//! Offline stand-in for `proptest`.
//!
//! Covers the surface this workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / vec / bool / simple-regex string
//! strategies, [`Strategy::prop_map`], `any::<T>()`, and the panic-based
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the generated input
//!   verbatim (every strategy value is `Debug`) instead of a minimal
//!   counterexample.
//! - **Deterministic seeding.** Each test derives its RNG seed from its
//!   own `module_path::name`, so runs are reproducible without a
//!   `proptest-regressions` persistence file. Regression seeds recorded
//!   by upstream proptest are instead pinned as explicit `#[test]`
//!   reproductions next to the property tests.
//! - `prop_assert!` panics rather than returning `Err`, which is
//!   equivalent under this runner.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's fully qualified name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn u128_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + ((self.next_u64() as u128) % span) as i128
    }
}

/// A generator of test-case values (subset of `proptest::strategy::Strategy`).
///
/// Every strategy value must be `Debug` so the runner can report the
/// failing input when a case panics.
pub trait Strategy {
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.u128_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.u128_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A => 0);
tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

// ---------------------------------------------------------------------------
// bool and any::<T>()
// ---------------------------------------------------------------------------

/// Uniform `bool` strategy (also the type behind `any::<bool>()`).
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `proptest::bool` (subset): the [`ANY`](self::bool::ANY) constant.
pub mod bool {
    /// Fair-coin `bool` strategy.
    pub const ANY: super::BoolStrategy = super::BoolStrategy;
    pub use super::BoolStrategy;
}

/// Types with a canonical strategy (subset of `proptest::arbitrary`).
pub trait Arbitrary: Sized + Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! arbitrary_full_range {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> RangeInclusive<$t> {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_full_range!(u8, u16, u32, u64, i8, i16, i32, i64);

/// The canonical strategy for `A` (subset of `proptest::arbitrary::any`).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// `proptest::collection` (subset): [`vec`](collection::vec).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.u128_in(self.size.lo as i128, self.size.hi_inclusive as i128) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generate a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// String strategies from simple regexes
// ---------------------------------------------------------------------------

/// `&str` regex patterns act as `String` strategies, as in upstream
/// proptest. Supported subset: concatenations of literal characters and
/// character classes `[a-z0-9_]`, each optionally repeated `{m}` or
/// `{m,n}`. Anything else panics with a clear message.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
            i = close + 1;
            set
        } else {
            assert!(
                !"(){}|*+?.\\^$".contains(chars[i]),
                "unsupported regex syntax {:?} in pattern {pattern:?} (shim supports classes and {{m,n}} repeats only)",
                chars[i]
            );
            let c = chars[i];
            i += 1;
            vec![c]
        };

        // Parse an optional {m} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let parsed = if let Some((m, n)) = body.split_once(',') {
                (m.trim().parse::<usize>(), n.trim().parse::<usize>())
            } else {
                let m = body.trim().parse::<usize>();
                (m.clone(), m)
            };
            i = close + 1;
            match parsed {
                (Ok(m), Ok(n)) if m <= n => (m, n),
                _ => panic!("bad repetition in pattern {pattern:?}"),
            }
        } else {
            (1, 1)
        };

        let count = rng.u128_in(lo as i128, hi as i128) as usize;
        for _ in 0..count {
            let idx = rng.u128_in(0, alphabet.len() as i128 - 1) as usize;
            out.push(alphabet[idx]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Runner and config
// ---------------------------------------------------------------------------

/// `proptest::test_runner` (subset): [`ProptestConfig`] and the case loop.
pub mod test_runner {
    use super::{Strategy, TestRng};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drive `body` over `config.cases` inputs drawn from `strategy`,
    /// reporting the generated input if a case panics.
    pub fn run<S: Strategy, F: FnMut(S::Value)>(
        config: &ProptestConfig,
        test_name: &str,
        strategy: S,
        mut body: F,
    ) {
        let mut rng = TestRng::from_name(test_name);
        for case in 0..config.cases {
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            let result = catch_unwind(AssertUnwindSafe(|| body(value)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest case failed: {test_name}, case {case}/{}: input = {shown}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                &$config,
                concat!(module_path!(), "::", stringify!($name)),
                ($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn regex_subset_generates_within_spec() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = crate::generate_from_pattern("[a-z]{3,8}", &mut rng);
            assert!((3..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::from_name("vec");
        let strat = crate::collection::vec(0.0..1.0f64, 4..96);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((4..96).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_args_and_strategies(
            x in 0u32..10,
            flip in crate::bool::ANY,
            pair in (0.0..=1.0f64, -5..=5i32),
        ) {
            prop_assert!(x < 10);
            prop_assert!((0.0..=1.0).contains(&pair.0));
            prop_assert!((-5..=5).contains(&pair.1));
            prop_assert_eq!(flip as u8 <= 1, true);
        }

        #[test]
        fn prop_map_applies(len in crate::collection::vec(1u64..3, 5).prop_map(|v| v.len())) {
            prop_assert_eq!(len, 5);
        }
    }
}
