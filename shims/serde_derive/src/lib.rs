//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace serializes through hand-rolled CSV/JSON emitters (see
//! `vb_trace::io`, `vb_stats::report`, `vb_telemetry::report`), so
//! `#[derive(Serialize, Deserialize)]` carries no behaviour here: the
//! derives are accepted — including `#[serde(...)]` field attributes —
//! and expand to nothing.

use proc_macro::TokenStream;

/// Accept `#[derive(Serialize)]` and expand to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept `#[derive(Deserialize)]` and expand to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
