//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derive macros and declares the marker traits so
//! `use serde::{Deserialize, Serialize}` resolves in both the type and
//! macro namespaces, exactly like the real crate. No generic
//! serialization machinery exists here — the workspace's serializers are
//! hand-rolled (`vb_trace::io`, `vb_stats::report`,
//! `vb_telemetry::report`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
