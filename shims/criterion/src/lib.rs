//! Offline stand-in for `criterion`.
//!
//! Provides the API surface `benches/perf_micro.rs` uses — [`Criterion`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a plain
//! wall-clock harness: each benchmark runs `sample_size` samples after a
//! short warm-up and reports min / median / max per-iteration time. No
//! statistical analysis, plotting, or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped; accepted for compatibility, the shim
/// times one routine call per setup either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark harness handle (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Per-benchmark timing driver (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few untimed iterations.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{name:<40} min {:>12} median {:>12} max {:>12} ({} samples)",
            fmt_duration(sorted[0]),
            fmt_duration(median),
            fmt_duration(*sorted.last().unwrap()),
            sorted.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Define a benchmark group: either
/// `criterion_group!(name, target, ...)` or the struct-like form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group_a(c: &mut Criterion) {
        c.bench_function("shim/iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("shim/iter_batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = group_a
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
