//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen` / `gen_range`. The generator is
//! SplitMix64 — deterministic per seed and statistically adequate for
//! the uniform variates the simulators draw; it is **not** bit-compatible
//! with upstream `StdRng` (ChaCha12), so absolute random sequences differ
//! from builds against the real crate while all per-seed determinism
//! guarantees hold.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] from uniform bits.
pub trait Standard: Sized {
    /// Map 64 uniform bits onto the type's standard distribution.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_bits_standard(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::from_bits_standard(rng.next_u64()) * (hi - lo)
    }
}

trait F64Bits {
    fn from_bits_standard(bits: u64) -> f64;
}
impl F64Bits for f64 {
    fn from_bits_standard(bits: u64) -> f64 {
        <f64 as Standard>::from_bits(bits)
    }
}

/// High-level sampling methods (subset of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; `bool`: fair coin; ints: uniform).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): a full-period 64-bit
            // mixer with solid equidistribution for simulation use.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&v));
            let w = rng.gen_range(-3i32..4);
            assert!((-3..4).contains(&w));
            let x = rng.gen_range(2.5..7.5f64);
            assert!((2.5..7.5).contains(&x));
            let u = rng.gen_range(1usize..=1);
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
