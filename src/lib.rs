//! Facade crate for the Virtual Battery workspace: re-exports every
//! sub-crate under one roof so downstream users can depend on a single
//! package. See `vb_core` for the paper-level API.

pub use vb_core;
pub use vb_core::*;
