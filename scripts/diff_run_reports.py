#!/usr/bin/env python3
"""Compare two vb-telemetry JSONL run reports for determinism.

Usage: diff_run_reports.py A.jsonl B.jsonl

Compares the *metric values* of the two reports — counters,
float_counters, gauges and histogram shapes from the summary line —
and the multiset of events. Quantities that legitimately differ
between runs are excluded:

* spans (wall-clock timings, *_ns),
* the `elapsed_secs` event field (timing),
* `par.workers` / `par.worker_tasks` (reflect the thread count by
  design; `par.tasks` — the amount of work — must still match).

Exit status 0 when the filtered reports are identical, 1 with a diff
on stdout otherwise.
"""

import json
import sys

EXCLUDED_METRICS = {"par.workers", "par.worker_tasks"}
EXCLUDED_EVENT_FIELDS = {"elapsed_secs"}


def load(path):
    # A missing or empty report means the bench never ran (or wrote
    # nowhere) — that must be a hard failure, not a vacuous "match".
    events = []
    summary = None
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as err:
        sys.exit(f"error: cannot read run report {path}: {err}")
    if not text.strip():
        sys.exit(f"error: run report {path} is empty")
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            sys.exit(f"error: {path}:{lineno}: malformed JSON: {err}")
        if obj.get("type") == "summary":
            summary = obj
        else:
            events.append(obj)
    if summary is None:
        sys.exit(f"error: {path}: no summary line found")
    return events, summary


def filtered_summary(summary):
    out = {}
    for section in ("counters", "float_counters", "gauges", "histograms"):
        values = summary.get(section, {})
        out[section] = {
            name: value
            for name, value in sorted(values.items())
            if name not in EXCLUDED_METRICS
        }
    return out


def filtered_events(events):
    # Parallel workers interleave event emission, so seq order is not
    # deterministic — compare the sorted multiset instead.
    normalized = []
    for event in events:
        fields = {
            key: value
            for key, value in event.get("fields", {}).items()
            if key not in EXCLUDED_EVENT_FIELDS
        }
        normalized.append(
            json.dumps({"kind": event.get("kind"), "fields": fields}, sort_keys=True)
        )
    return sorted(normalized)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    (events_a, summary_a), (events_b, summary_b) = (
        load(sys.argv[1]),
        load(sys.argv[2]),
    )
    ok = True

    fa, fb = filtered_summary(summary_a), filtered_summary(summary_b)
    for section in fa:
        if fa[section] != fb[section]:
            ok = False
            keys = set(fa[section]) | set(fb[section])
            for key in sorted(keys):
                va, vb = fa[section].get(key), fb[section].get(key)
                if va != vb:
                    print(f"{section}.{key}: {va!r} != {vb!r}")

    ea, eb = filtered_events(events_a), filtered_events(events_b)
    if ea != eb:
        ok = False
        only_a = [e for e in ea if e not in eb]
        only_b = [e for e in eb if e not in ea]
        for e in only_a[:10]:
            print(f"only in {sys.argv[1]}: {e}")
        for e in only_b[:10]:
            print(f"only in {sys.argv[2]}: {e}")

    if not ok:
        sys.exit(1)

    # A "match" between two reports with nothing left after filtering
    # would certify nothing — treat it as a broken harness.
    compared = sum(len(fa[section]) for section in fa) + len(ea)
    if compared == 0:
        sys.exit("error: no comparable metrics or events after exclusions")
    print(
        f"run reports match ({compared} metrics/events compared; "
        "timings and worker counts excluded)"
    )


if __name__ == "__main__":
    main()
