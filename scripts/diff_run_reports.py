#!/usr/bin/env python3
"""Compare two vb-telemetry JSONL run reports for determinism.

Usage: diff_run_reports.py A.jsonl B.jsonl

Compares the *metric values* of the two reports — counters,
float_counters, gauges and histogram shapes from the summary line —
the multiset of events, and the per-epoch series lines. Quantities
that legitimately differ between runs are excluded:

* spans (wall-clock timings, *_ns),
* the `elapsed_secs` event field (timing),
* `par.workers` / `par.worker_tasks` (reflect the thread count by
  design; `par.tasks` — the amount of work — must still match),
* wall-clock series columns (`secs`).

Exit status 0 when the filtered reports are identical, 1 with a diff
on stdout otherwise.
"""

import json
import sys

EXCLUDED_METRICS = {"par.workers", "par.worker_tasks"}
EXCLUDED_EVENT_FIELDS = {"elapsed_secs"}
EXCLUDED_SERIES_COLUMNS = {"secs"}


def load(path):
    # A missing or empty report means the bench never ran (or wrote
    # nowhere) — that must be a hard failure, not a vacuous "match".
    events = []
    series = []
    summary = None
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as err:
        sys.exit(f"error: cannot read run report {path}: {err}")
    if not text.strip():
        sys.exit(f"error: run report {path} is empty")
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as err:
            sys.exit(f"error: {path}:{lineno}: malformed JSON: {err}")
        if obj.get("type") == "summary":
            summary = obj
        elif obj.get("type") == "series":
            series.append(obj)
        else:
            events.append(obj)
    if summary is None:
        sys.exit(f"error: {path}: no summary line found")
    return events, series, summary


def filtered_summary(summary):
    out = {}
    for section in ("counters", "float_counters", "gauges", "histograms"):
        values = summary.get(section, {})
        out[section] = {
            name: value
            for name, value in sorted(values.items())
            if name not in EXCLUDED_METRICS
        }
    return out


def filtered_events(events):
    # Parallel workers interleave event emission, so seq order is not
    # deterministic — compare the sorted multiset instead.
    normalized = []
    for event in events:
        fields = {
            key: value
            for key, value in event.get("fields", {}).items()
            if key not in EXCLUDED_EVENT_FIELDS
        }
        normalized.append(
            json.dumps({"kind": event.get("kind"), "fields": fields}, sort_keys=True)
        )
    return sorted(normalized)


def filtered_series(series):
    # Series are keyed by (name, instance); within one report each key
    # appears once. Everything except wall-clock columns must be
    # bit-identical — epochs included.
    out = {}
    for entry in series:
        key = (entry.get("name"), entry.get("instance"))
        if key in out:
            sys.exit(f"error: duplicate series {key[0]}/{key[1]} in one report")
        out[key] = {
            "epochs": entry.get("epochs"),
            "columns": {
                name: values
                for name, values in sorted(entry.get("columns", {}).items())
                if name not in EXCLUDED_SERIES_COLUMNS
            },
        }
    return out


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip())
    (events_a, series_a, summary_a), (events_b, series_b, summary_b) = (
        load(sys.argv[1]),
        load(sys.argv[2]),
    )
    ok = True

    fa, fb = filtered_summary(summary_a), filtered_summary(summary_b)
    for section in fa:
        if fa[section] != fb[section]:
            ok = False
            keys = set(fa[section]) | set(fb[section])
            for key in sorted(keys):
                va, vb = fa[section].get(key), fb[section].get(key)
                if va != vb:
                    print(f"{section}.{key}: {va!r} != {vb!r}")

    ea, eb = filtered_events(events_a), filtered_events(events_b)
    if ea != eb:
        ok = False
        only_a = [e for e in ea if e not in eb]
        only_b = [e for e in eb if e not in ea]
        for e in only_a[:10]:
            print(f"only in {sys.argv[1]}: {e}")
        for e in only_b[:10]:
            print(f"only in {sys.argv[2]}: {e}")

    sa, sb = filtered_series(series_a), filtered_series(series_b)
    if sa != sb:
        ok = False
        for key in sorted(set(sa) | set(sb)):
            va, vb = sa.get(key), sb.get(key)
            if va == vb:
                continue
            name = f"{key[0]}/{key[1]}"
            if va is None or vb is None:
                where = sys.argv[1] if vb is None else sys.argv[2]
                print(f"series {name}: only in {where}")
                continue
            if va["epochs"] != vb["epochs"]:
                print(f"series {name}: epoch axes differ")
            for col in sorted(set(va["columns"]) | set(vb["columns"])):
                if va["columns"].get(col) != vb["columns"].get(col):
                    print(f"series {name}.{col}: values differ")

    if not ok:
        sys.exit(1)

    # A "match" between two reports with nothing left after filtering
    # would certify nothing — treat it as a broken harness.
    compared = sum(len(fa[section]) for section in fa) + len(ea) + len(sa)
    if compared == 0:
        sys.exit("error: no comparable metrics or events after exclusions")
    print(
        f"run reports match ({compared} metrics/events/series compared; "
        "timings and worker counts excluded)"
    )


if __name__ == "__main__":
    main()
