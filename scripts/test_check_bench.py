#!/usr/bin/env python3
"""Unit tests for the check_bench.py perf gate.

Run with `python3 scripts/test_check_bench.py` (or unittest discovery).
The regression pinned here: the key-set comparison must be *symmetric*.
The old gate only verified that its own rule table's keys existed in
each file, so a current result that dropped a baseline key — or grew a
key the baseline never had (a renamed metric, a vanished scale row) —
passed silently as "nothing to compare".
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench


def solver_result(**updates):
    base = {
        "bench": "solver_epoch_reuse",
        "epochs": 96,
        "apps": 16,
        "sites": 3,
        "buckets": 6,
        "cold_secs": 0.02,
        "warm_secs": 0.002,
        "speedup": 10.0,
        "cold_pivots": 7000,
        "warm_pivots": 70,
        "pivot_reduction": 0.99,
        "warm_hits": 95,
        "max_objective_drift": 1e-12,
    }
    base.update(updates)
    return base


def solver_scale_row(scale, **updates):
    row = {
        "scale": scale,
        "apps": 1600,
        "vars": 4818,
        "rows": 2578,
        "epochs": 2,
        "baseline_secs": 0.5,
        "kernel_secs": 0.12,
        "speedup": 4.2,
        "baseline_pivots": 4000,
        "kernel_pivots": 2000,
        "presolve_vars_fixed": 5760,
        "refactorizations": 40,
        "eta_updates": 1900,
        "max_objective_drift": 0.0,
    }
    row.update(updates)
    return row


def fleet_row(scale, **updates):
    row = {
        "scale": scale,
        "sites": 30,
        "shards": 10,
        "days": 84,
        "steps": 8064,
        "policy": "Greedy",
        "event_secs": 0.2,
        "legacy_secs": 3.0,
        "event_steps_per_sec": 1_200_000.0,
        "legacy_steps_per_sec": 80_000.0,
        "speedup": 15.0,
        "vm_decisions": 532_000,
        "vm_decisions_per_sec": 2_600_000.0,
        "total_gb": 888_000.0,
        "dropped_apps": 1000,
        "peak_rss_mb": 120.0,
    }
    row.update(updates)
    return row


def fleet_result(rows):
    return {"bench": "fleet_sim", "shard_size": 3, "rows": rows}


class GateHarness(unittest.TestCase):
    def gate(self, current, baseline, rows_filter=None, overrides=None):
        """Run the gate over two in-memory results; return (code, output)."""
        with tempfile.TemporaryDirectory() as tmp:
            cur_path = os.path.join(tmp, "current.json")
            base_path = os.path.join(tmp, "baseline.json")
            with open(cur_path, "w") as fh:
                json.dump(current, fh)
            with open(base_path, "w") as fh:
                json.dump(baseline, fh)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = check_bench.run_gate(cur_path, base_path, rows_filter, overrides)
            return code, out.getvalue()


class SolverGateTests(GateHarness):
    def test_identical_results_pass(self):
        code, out = self.gate(solver_result(), solver_result())
        self.assertEqual(code, 0, out)
        self.assertIn("perf gate passed", out)

    def test_wallclock_regression_fails(self):
        code, out = self.gate(solver_result(warm_secs=0.1), solver_result())
        self.assertEqual(code, 1, out)
        self.assertIn("warm_secs", out)

    def test_missing_key_in_current_fails(self):
        # Direction 1: the current result lost a key the baseline has.
        current = solver_result()
        del current["speedup"]
        code, out = self.gate(current, solver_result())
        self.assertEqual(code, 1, out)
        self.assertIn("only in baseline: speedup", out)

    def test_extra_key_in_current_fails(self):
        # Direction 2 (the old gate's blind spot): the current result
        # carries a key the baseline has never seen.
        code, out = self.gate(solver_result(new_metric=1.0), solver_result())
        self.assertEqual(code, 1, out)
        self.assertIn("only in current result: new_metric", out)

    def test_bench_kind_mismatch_fails(self):
        code, out = self.gate(fleet_result([fleet_row("10x")]), solver_result())
        self.assertEqual(code, 1, out)
        self.assertIn("bench kind mismatch", out)

    def test_scaling_rows_gate_independently(self):
        rows = [solver_scale_row("100x")]
        code, out = self.gate(
            solver_result(scaling=rows), solver_result(scaling=rows)
        )
        self.assertEqual(code, 0, out)
        self.assertIn("100x.speedup", out)

    def test_scaling_speedup_collapse_fails(self):
        # The production kernel losing its edge over the baseline kernel
        # (e.g. presolve silently disabled) must trip the gate.
        code, out = self.gate(
            solver_result(scaling=[solver_scale_row("100x", speedup=1.1)]),
            solver_result(scaling=[solver_scale_row("100x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("100x.speedup", out)

    def test_scaling_presolve_reduction_drift_fails(self):
        code, out = self.gate(
            solver_result(scaling=[solver_scale_row("100x", presolve_vars_fixed=0)]),
            solver_result(scaling=[solver_scale_row("100x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("100x.presolve_vars_fixed", out)

    def test_scaling_refactorization_blowup_fails(self):
        # A degraded eta/update path shows up as the factorized kernel
        # refactorizing far more often than the committed baseline.
        code, out = self.gate(
            solver_result(scaling=[solver_scale_row("100x", refactorizations=80)]),
            solver_result(scaling=[solver_scale_row("100x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("100x.refactorizations", out)

    def test_scaling_eta_updates_within_band_pass(self):
        # Small cross-platform drift in the stability trigger is not a
        # regression: eta updates have a 1.25x band, not bit-equality.
        code, out = self.gate(
            solver_result(scaling=[solver_scale_row("100x", eta_updates=2100)]),
            solver_result(scaling=[solver_scale_row("100x")]),
        )
        self.assertEqual(code, 0, out)
        self.assertIn("100x.eta_updates", out)

    def test_scaling_eta_updates_blowup_fails(self):
        code, out = self.gate(
            solver_result(scaling=[solver_scale_row("100x", eta_updates=4000)]),
            solver_result(scaling=[solver_scale_row("100x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("100x.eta_updates", out)

    def test_scaling_objective_drift_fails(self):
        code, out = self.gate(
            solver_result(
                scaling=[solver_scale_row("100x", max_objective_drift=1e-3)]
            ),
            solver_result(scaling=[solver_scale_row("100x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("100x.max_objective_drift", out)

    def test_vanished_scaling_row_fails(self):
        code, out = self.gate(
            solver_result(scaling=[solver_scale_row("1x", apps=16)]),
            solver_result(
                scaling=[solver_scale_row("1x", apps=16), solver_scale_row("100x")]
            ),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("only in baseline", out)

    def test_rows_filter_applies_to_scaling_rows(self):
        code, out = self.gate(
            solver_result(scaling=[solver_scale_row("1x", apps=16)]),
            solver_result(
                scaling=[solver_scale_row("1x", apps=16), solver_scale_row("100x")]
            ),
            rows_filter=["1x"],
        )
        self.assertEqual(code, 0, out)
        self.assertNotIn("100x.", out)


class FleetGateTests(GateHarness):
    def test_identical_results_pass(self):
        rows = [fleet_row("10x"), fleet_row("100x", sites=300, shards=100)]
        code, out = self.gate(fleet_result(rows), fleet_result(rows))
        self.assertEqual(code, 0, out)

    def test_speedup_collapse_fails(self):
        # The event core losing its edge (e.g. the O(1) detach path
        # regressing to a full-list retain) must trip the gate.
        code, out = self.gate(
            fleet_result([fleet_row("10x", speedup=4.0)]),
            fleet_result([fleet_row("10x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("10x.speedup", out)

    def test_missing_scale_row_fails(self):
        # A vanished 100x row is a key-set mismatch, not a silent skip.
        code, out = self.gate(
            fleet_result([fleet_row("10x")]),
            fleet_result([fleet_row("10x"), fleet_row("100x", sites=300)]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("only in baseline", out)
        self.assertIn("100x.speedup", out)

    def test_extra_scale_row_fails(self):
        code, out = self.gate(
            fleet_result([fleet_row("10x"), fleet_row("1000x", sites=3000)]),
            fleet_result([fleet_row("10x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("only in current result", out)

    def test_rows_filter_gates_named_scales_only(self):
        # CI runs only the 10x row; the baseline still carries 100x.
        code, out = self.gate(
            fleet_result([fleet_row("10x")]),
            fleet_result([fleet_row("10x"), fleet_row("100x", sites=300)]),
            rows_filter=["10x"],
        )
        self.assertEqual(code, 0, out)
        self.assertNotIn("100x.", out)

    def test_structural_drift_fails(self):
        code, out = self.gate(
            fleet_result([fleet_row("10x", days=7, steps=672)]),
            fleet_result([fleet_row("10x")]),
        )
        self.assertEqual(code, 1, out)
        self.assertIn("10x.days", out)

    def test_override_widens_band(self):
        current = fleet_result([fleet_row("10x", event_secs=0.7)])
        baseline = fleet_result([fleet_row("10x")])
        code, _ = self.gate(current, baseline)
        self.assertEqual(code, 1)
        code, _ = self.gate(current, baseline, overrides={"event_secs": 4.0})
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
