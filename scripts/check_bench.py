#!/usr/bin/env python3
"""Perf-regression gate over the committed bench baselines.

Usage: check_bench.py CURRENT.json BASELINE.json [--rows=SCALE,...] [KEY=TOL ...]

Compares a freshly produced bench result (`BENCH_solver.json`,
`BENCH_fleet.json`) against the committed baseline and exits non-zero
when the run regressed past the tolerance band for any key. The rule
table is selected by the file's `bench` field:

* `solver_epoch_reuse` — the flat solver warm-start baseline, plus
  per-scale `scaling` rows (`1x`, `10x`, `100x` model sizes comparing
  the production kernel against the pre-presolve baseline kernel)
  flattened to `{scale}.{key}` entries;
* `fleet_sim` — per-scale rows (`10x`, `100x`, ...) flattened to
  `{scale}.{key}` entries so every scale is gated independently.

For either kind, `--rows=10x` restricts the gate to the named scales
(CI runs the cheap scales only; the committed baseline also carries
the expensive ones).

Keys fall into three classes:

* structural (`sites`, `epochs`, `policy`, ...): exact match — a drift
  here means the bench ran a different experiment and the perf
  comparison is meaningless;
* quality (pivot counts, decision counts, volumes): deterministic given
  the config, but floats crossing libm versions get a small relative
  band (`rel`) instead of bit-equality;
* wall-clock (`*_secs`, `*_per_sec`, `speedup`): noisy on shared CI
  hosts, so the bands are wide — wide enough to ride out scheduler
  noise, tight enough that a genuinely quadratic regression or a lost
  fast path still trips it.

The key sets of the current result and the baseline must match exactly,
in *both* directions: a key present on one side only — current missing
a baseline key, or current carrying a key the baseline has never seen —
fails the gate. (An earlier version only checked that the rule table's
keys existed in each file, so a renamed or extra key in either file
slid through as "nothing to compare".)

Tolerances can be overridden per key on the command line, e.g.
`warm_secs=3.0`, or per flattened fleet key (`10x.event_secs=4.0`); a
bare row key (`event_secs=4.0`) applies to that key in every row.
Improvements never fail the gate (they print a hint to refresh the
baseline instead).
"""

import json
import sys

# Rules:
#   exact      — current == baseline
#   ratio      — current <= tol * baseline (bigger is worse)
#   ratio_min  — current >= baseline / tol (smaller is worse)
#   slack_min  — current >= baseline - tol (smaller is worse)
#   abs_max    — current <= tol (baseline-independent ceiling)
#   rel        — |current - baseline| <= tol * max(|baseline|, 1)
SOLVER_RULES = {
    "epochs": ("exact", None),
    "apps": ("exact", None),
    "sites": ("exact", None),
    "buckets": ("exact", None),
    "warm_hits": ("exact", None),
    "cold_secs": ("ratio", 2.0),
    "warm_secs": ("ratio", 2.0),
    "speedup": ("ratio_min", 2.0),
    "cold_pivots": ("ratio", 1.1),
    "warm_pivots": ("ratio", 1.1),
    "pivot_reduction": ("slack_min", 0.05),
    "max_objective_drift": ("abs_max", 1e-6),
}

SOLVER_ROW_RULES = {
    # Structural: a drifting model size means a different experiment.
    "apps": ("exact", None),
    "vars": ("exact", None),
    "rows": ("exact", None),
    "epochs": ("exact", None),
    # Deterministic given the config: presolve reductions and pivot
    # counts must not quietly regress.
    "presolve_vars_fixed": ("exact", None),
    "baseline_pivots": ("ratio", 1.1),
    "kernel_pivots": ("ratio", 1.1),
    # Wall-clock: wide bands for shared CI hosts.
    "baseline_secs": ("ratio", 2.0),
    "kernel_secs": ("ratio", 2.0),
    # The headline claim: the production kernel's advantage over the
    # baseline kernel. Both run in one process on one host, so host
    # noise largely cancels in the ratio and the band can be tighter
    # than the raw timers.
    "speedup": ("ratio_min", 1.4),
    # Factorized-basis accounting: deterministic given the config, but
    # the refactorization policy includes a floating-point stability
    # trigger, so cross-platform float drift gets a band rather than
    # bit-equality. More refactorizations (or a longer eta file) than
    # the baseline means the update path degraded.
    "refactorizations": ("ratio", 1.5),
    "eta_updates": ("ratio", 1.25),
    # The production kernel must not move any optimum.
    "max_objective_drift": ("abs_max", 1e-6),
}

FLEET_TOP_RULES = {
    "shard_size": ("exact", None),
}

FLEET_ROW_RULES = {
    "sites": ("exact", None),
    "shards": ("exact", None),
    "days": ("exact", None),
    "steps": ("exact", None),
    "policy": ("exact", None),
    # Deterministic given the config, but floats produced through libm
    # transcendentals (trace generation) may drift in the last ulps
    # across platforms — a tight relative band instead of bit-equality.
    "vm_decisions": ("rel", 0.01),
    "total_gb": ("rel", 0.01),
    "dropped_apps": ("rel", 0.05),
    # Wall-clock: wide bands for shared CI hosts.
    "event_secs": ("ratio", 2.0),
    "legacy_secs": ("ratio", 2.0),
    "event_steps_per_sec": ("ratio_min", 2.0),
    "legacy_steps_per_sec": ("ratio_min", 2.0),
    "vm_decisions_per_sec": ("ratio_min", 2.0),
    # The headline claim: the event core's advantage over the legacy
    # step loop. The band is tighter than the raw timers because both
    # cores run in one process on one host — host noise largely cancels
    # in the ratio.
    "speedup": ("ratio_min", 1.5),
    "peak_rss_mb": ("ratio", 2.5),
}


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot load bench result {path}: {err}")


def flatten_rows(data, path, rows_key, row_rules, flat, rules, rows_filter):
    """Flatten `data[rows_key]` into `{scale}.{key}` entries in place."""
    seen_scales = []
    for row in data.get(rows_key, []):
        scale = row.get("scale")
        if not scale:
            sys.exit(f"error: {path}: {rows_key} row without a `scale` field")
        seen_scales.append(scale)
        if rows_filter is not None and scale not in rows_filter:
            continue
        for key, value in row.items():
            if key == "scale":
                continue
            if key not in row_rules:
                sys.exit(f"error: {path}: no gate rule for {rows_key} row key `{key}`")
            flat[f"{scale}.{key}"] = value
            rules[f"{scale}.{key}"] = row_rules[key]
    if rows_filter is not None:
        unknown = sorted(set(rows_filter) - set(seen_scales))
        if unknown:
            sys.exit(
                f"error: {path}: --rows names scales not in the file: "
                f"{', '.join(unknown)}"
            )


def flatten(data, path, rows_filter=None):
    """(flat key -> value, flat key -> rule) for one bench file."""
    bench = data.get("bench")
    if bench == "solver_epoch_reuse":
        flat = {k: v for k, v in data.items() if k not in ("bench", "scaling")}
        rules = dict(SOLVER_RULES)
        flatten_rows(data, path, "scaling", SOLVER_ROW_RULES, flat, rules, rows_filter)
        return flat, rules
    if bench == "fleet_sim":
        flat = {k: v for k, v in data.items() if k not in ("bench", "rows")}
        rules = dict(FLEET_TOP_RULES)
        flatten_rows(data, path, "rows", FLEET_ROW_RULES, flat, rules, rows_filter)
        return flat, rules
    sys.exit(f"error: {path}: unknown bench kind {bench!r}")


def keyset_mismatch(cur_flat, base_flat):
    """Symmetric key comparison: drift in either direction is fatal."""
    msgs = []
    only_cur = sorted(set(cur_flat) - set(base_flat))
    only_base = sorted(set(base_flat) - set(cur_flat))
    if only_cur:
        msgs.append(f"keys only in current result: {', '.join(only_cur)}")
    if only_base:
        msgs.append(f"keys only in baseline: {', '.join(only_base)}")
    return msgs


def check(key, rule, tol, cur, base):
    """Return (ok, verdict) for one key."""
    if rule == "exact":
        return cur == base, "exact match required"
    if rule == "ratio":
        return cur <= tol * base, f"must stay <= {tol:g}x baseline"
    if rule == "ratio_min":
        return cur >= base / tol, f"must stay >= baseline/{tol:g}"
    if rule == "slack_min":
        return cur >= base - tol, f"must stay >= baseline - {tol:g}"
    if rule == "abs_max":
        return cur <= tol, f"must stay <= {tol:g}"
    if rule == "rel":
        band = tol * max(abs(base), 1.0)
        return abs(cur - base) <= band, f"must stay within {tol:g} relative"
    sys.exit(f"error: unknown rule {rule} for {key}")


def run_gate(current_path, baseline_path, rows_filter=None, overrides=None):
    """Run the gate; returns the process exit code (importable for tests)."""
    overrides = overrides or {}
    current, baseline = load(current_path), load(baseline_path)
    if current.get("bench") != baseline.get("bench"):
        print(
            f"perf gate FAILED: bench kind mismatch "
            f"({current.get('bench')!r} vs {baseline.get('bench')!r})"
        )
        return 1

    cur_flat, rules = flatten(current, current_path, rows_filter)
    base_flat, base_rules = flatten(baseline, baseline_path, rows_filter)
    mismatches = keyset_mismatch(cur_flat, base_flat)
    if mismatches:
        for msg in mismatches:
            print(msg)
        print("perf gate FAILED: key sets diverged between current and baseline")
        return 1
    # A scale present in both files gated by the union of both rule
    # derivations (identical by construction once the key sets match).
    rules.update({k: v for k, v in base_rules.items() if k not in rules})

    failures = []
    improvements = []
    width = max(len(k) for k in rules) if rules else 10
    print(f"{'key':<{width}} {'current':>14} {'baseline':>14}  verdict")
    for key in sorted(rules):
        rule, default_tol = rules[key]
        tol = overrides.get(key, overrides.get(key.partition(".")[2], default_tol))
        cur, base = cur_flat[key], base_flat[key]
        ok, band = check(key, rule, tol, cur, base)
        status = "ok" if ok else "FAIL"
        print(f"{key:<{width}} {cur!s:>14} {base!s:>14}  {status} ({band})")
        if not ok:
            failures.append(key)
        elif rule == "ratio" and isinstance(cur, (int, float)) and cur < 0.5 * base:
            improvements.append(key)

    if improvements:
        print(
            f"note: {', '.join(improvements)} improved >2x over baseline — "
            "consider refreshing the committed baseline"
        )
    if failures:
        print(f"perf gate FAILED: {', '.join(failures)} regressed past tolerance")
        return 1
    print("perf gate passed")
    return 0


def main(argv):
    if len(argv) < 3:
        sys.exit(__doc__.strip())
    current_path, baseline_path = argv[1], argv[2]

    rows_filter = None
    overrides = {}
    known = {**SOLVER_RULES, **SOLVER_ROW_RULES, **FLEET_ROW_RULES, **FLEET_TOP_RULES}
    for arg in argv[3:]:
        if arg.startswith("--rows="):
            rows_filter = [r for r in arg[len("--rows=") :].split(",") if r]
            continue
        key, eq, value = arg.partition("=")
        bare = key.partition(".")[2] or key
        if not eq or (bare not in known and key not in known):
            sys.exit(f"error: bad tolerance override `{arg}` (expected KEY=TOL)")
        if known.get(key, known.get(bare))[0] == "exact":
            sys.exit(f"error: `{key}` is structural; its tolerance cannot be overridden")
        try:
            overrides[key] = float(value)
        except ValueError:
            sys.exit(f"error: tolerance `{value}` for {key} is not a number")

    sys.exit(run_gate(current_path, baseline_path, rows_filter, overrides))


if __name__ == "__main__":
    main(sys.argv)
