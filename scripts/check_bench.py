#!/usr/bin/env python3
"""Perf-regression gate over the solver epoch-reuse bench.

Usage: check_bench.py CURRENT.json BASELINE.json [KEY=TOL ...]

Compares a freshly produced `BENCH_solver.json` against the committed
baseline and exits non-zero when the run regressed past the tolerance
band for any key. Keys fall into three classes:

* structural (`bench`, `epochs`, `apps`, `sites`, `buckets`,
  `warm_hits`): exact match — a drift here means the bench ran a
  different experiment and the perf comparison is meaningless;
* quality (`pivot_reduction`, `max_objective_drift`, `cold_pivots`,
  `warm_pivots`): pivot counts are deterministic but allowed a small
  slack so baseline refreshes need not be pivot-exact across solver
  tweaks; the reduction ratio and objective drift are bounded
  absolutely;
* wall-clock (`cold_secs`, `warm_secs`, `speedup`): noisy on shared CI
  hosts, so the band is wide (2x) — wide enough to ride out scheduler
  noise, tight enough that a genuinely quadratic regression or a lost
  warm-start path still trips it.

Tolerances can be overridden per key on the command line, e.g.
`warm_secs=3.0` to triple the wall-clock band on a known-slow runner.
Improvements never fail the gate (they print a hint to refresh the
baseline instead).
"""

import json
import sys

# key -> (rule, default tolerance). Rules:
#   exact      — current == baseline
#   ratio      — current <= tol * baseline (bigger is worse)
#   ratio_min  — current >= baseline / tol (smaller is worse)
#   slack_min  — current >= baseline - tol (smaller is worse)
#   abs_max    — current <= tol (baseline-independent ceiling)
RULES = {
    "bench": ("exact", None),
    "epochs": ("exact", None),
    "apps": ("exact", None),
    "sites": ("exact", None),
    "buckets": ("exact", None),
    "warm_hits": ("exact", None),
    "cold_secs": ("ratio", 2.0),
    "warm_secs": ("ratio", 2.0),
    "speedup": ("ratio_min", 2.0),
    "cold_pivots": ("ratio", 1.1),
    "warm_pivots": ("ratio", 1.1),
    "pivot_reduction": ("slack_min", 0.05),
    "max_objective_drift": ("abs_max", 1e-6),
}


def load(path):
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot load bench result {path}: {err}")
    missing = sorted(set(RULES) - set(data))
    if missing:
        sys.exit(f"error: {path} is missing keys: {', '.join(missing)}")
    return data


def check(key, rule, tol, cur, base):
    """Return (ok, verdict) for one key."""
    if rule == "exact":
        return cur == base, "exact match required"
    if rule == "ratio":
        return cur <= tol * base, f"must stay <= {tol:g}x baseline"
    if rule == "ratio_min":
        return cur >= base / tol, f"must stay >= baseline/{tol:g}"
    if rule == "slack_min":
        return cur >= base - tol, f"must stay >= baseline - {tol:g}"
    if rule == "abs_max":
        return cur <= tol, f"must stay <= {tol:g}"
    sys.exit(f"error: unknown rule {rule} for {key}")


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__.strip())
    current, baseline = load(sys.argv[1]), load(sys.argv[2])

    overrides = {}
    for arg in sys.argv[3:]:
        key, eq, value = arg.partition("=")
        if not eq or key not in RULES:
            sys.exit(f"error: bad tolerance override `{arg}` (expected KEY=TOL)")
        if RULES[key][0] == "exact":
            sys.exit(f"error: `{key}` is structural; its tolerance cannot be overridden")
        try:
            overrides[key] = float(value)
        except ValueError:
            sys.exit(f"error: tolerance `{value}` for {key} is not a number")

    failures = []
    improvements = []
    print(f"{'key':<20} {'current':>12} {'baseline':>12}  verdict")
    for key, (rule, default_tol) in RULES.items():
        tol = overrides.get(key, default_tol)
        cur, base = current[key], baseline[key]
        ok, band = check(key, rule, tol, cur, base)
        status = "ok" if ok else "FAIL"
        print(f"{key:<20} {cur!s:>12} {base!s:>12}  {status} ({band})")
        if not ok:
            failures.append(key)
        elif rule == "ratio" and isinstance(cur, (int, float)) and cur < 0.5 * base:
            improvements.append(key)

    if improvements:
        print(
            f"note: {', '.join(improvements)} improved >2x over baseline — "
            "consider refreshing BENCH_solver.json"
        )
    if failures:
        print(f"perf gate FAILED: {', '.join(failures)} regressed past tolerance")
        sys.exit(1)
    print("perf gate passed")


if __name__ == "__main__":
    main()
